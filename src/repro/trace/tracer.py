"""Sim-clock-native span recording.

A :class:`Tracer` records nested :class:`Span`\\ s, instant events and
counter samples stamped with **simulated** milliseconds.  It is a pure
observer: recording never schedules events, draws random numbers or
advances the clock, so a traced run replays the exact event schedule of
an untraced one (the zero-perturbation guarantee the regression tests
lock down).

Attachment model
----------------

Instrumentation sites resolve their tracer through :func:`tracer_for`:

* :meth:`Tracer.attach` binds a tracer to one
  :class:`~repro.sim.Environment` (``env.tracer``) and makes it the
  *active* tracer, so env-less layers (the memory substrate, the
  caches) can reach it through :func:`current`;
* :func:`enable` installs a tracer process-globally (the CLI's
  ``--trace`` flag), capturing every environment built afterwards;
* with neither, every call lands on the :data:`NULL_TRACER`, whose
  methods are no-ops — tracing disabled costs one method dispatch.

Spans carry explicit parents rather than an ambient stack: simulation
processes interleave at yield points, so "the enclosing span" is a
per-invocation notion, not a per-thread one.  A root span (``parent is
None``) opens a fresh *track* (one Perfetto thread lane); children
inherit their parent's track.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "CounterSample",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "current",
    "disable",
    "enable",
    "tracer_for",
]


class Span:
    """One named interval on the simulated clock.

    Usable as a context manager (``with tracer.span(...)``) or finished
    explicitly with :meth:`finish`; instrumentation inside simulation
    generators passes explicit ``at=`` stamps so span edges are exact
    even when the tracer is not bound to the span's environment.
    """

    __slots__ = (
        "_tracer",
        "span_id",
        "parent_id",
        "track",
        "name",
        "category",
        "start_ms",
        "end_ms",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        track: int,
        name: str,
        category: str,
        start_ms: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.track = track
        self.name = name
        self.category = category
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs = attrs

    # -- introspection ---------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        """Span length; 0.0 while still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    # -- recording -------------------------------------------------------
    def finish(self, at: Optional[float] = None) -> "Span":
        """Close the span (idempotent) at ``at`` or the tracer's clock."""
        if self.end_ms is None:
            self.end_ms = self._tracer._stamp(at)
        return self

    def span(
        self,
        name: str,
        at: Optional[float] = None,
        category: Optional[str] = None,
        **attrs: Any,
    ) -> "Span":
        """Open a child span on this span's track."""
        return self._tracer.span(
            name, at=at, parent=self, category=category or "span", **attrs
        )

    def done(
        self, name: str, start_ms: float, end_ms: float, **attrs: Any
    ) -> "Span":
        """Record an already-closed child span with explicit edges."""
        return self._tracer.record_span(name, self, start_ms, end_ms, **attrs)

    def event(self, name: str, at: Optional[float] = None, **attrs: Any) -> None:
        """Record an instant event on this span's track."""
        self._tracer.event(name, at=at, track=self.track, **attrs)

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.finish()

    def __repr__(self) -> str:
        end = f"{self.end_ms:.3f}" if self.end_ms is not None else "open"
        return (
            f"Span({self.name!r}, {self.start_ms:.3f}..{end}, "
            f"track={self.track}, id={self.span_id})"
        )


@dataclass(frozen=True)
class TraceEvent:
    """An instant event (Perfetto 'i' phase)."""

    name: str
    ts_ms: float
    track: int
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a cumulative counter (Perfetto 'C' phase)."""

    name: str
    ts_ms: float
    value: float


#: Track 0 is reserved for global events and counters.
GLOBAL_TRACK = 0


class Tracer:
    """Records spans, events and counters; never touches the schedule."""

    #: NullTracer overrides this; hot paths may branch on it.
    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.counters: List[CounterSample] = []
        self._counter_totals: Dict[str, float] = {}
        self._next_span = itertools.count(1)
        self._next_track = itertools.count(GLOBAL_TRACK + 1)
        self._env = None
        self._env_stack: List[Any] = []
        #: High-water timestamp; the clock of last resort for env-less
        #: recording sites (keeps exported traces monotonic).
        self._last_ts = 0.0

    # -- attachment ------------------------------------------------------
    def attach(self, env) -> "Tracer":
        """Bind to ``env`` (``env.tracer``) and become the active tracer."""
        self._env_stack.append(self._env)
        self._env = env
        env.tracer = self
        _ACTIVE.append(self)
        return self

    def detach(self, env) -> None:
        """Undo :meth:`attach`; recorded data stays on the tracer."""
        if getattr(env, "tracer", None) is self:
            del env.tracer
        if self._env_stack:
            self._env = self._env_stack.pop()
        else:
            self._env = None
        if self in _ACTIVE:
            # Remove the most recent registration of *this* tracer.
            for index in range(len(_ACTIVE) - 1, -1, -1):
                if _ACTIVE[index] is self:
                    del _ACTIVE[index]
                    break

    # -- clock -----------------------------------------------------------
    def now(self) -> float:
        """The attached environment's clock, else the high-water stamp."""
        if self._env is not None:
            return self._env.now
        return self._last_ts

    def _stamp(self, at: Optional[float]) -> float:
        ts = self.now() if at is None else float(at)
        if ts > self._last_ts:
            self._last_ts = ts
        return ts

    # -- recording -------------------------------------------------------
    def span(
        self,
        name: str,
        at: Optional[float] = None,
        parent: Optional[Span] = None,
        category: str = "span",
        **attrs: Any,
    ) -> Span:
        """Open a span; a ``parent`` of ``None`` starts a new track."""
        if parent is None:
            track = next(self._next_track)
            parent_id = None
        else:
            track = parent.track
            parent_id = parent.span_id
        span = Span(
            tracer=self,
            span_id=next(self._next_span),
            parent_id=parent_id,
            track=track,
            name=name,
            category=category,
            start_ms=self._stamp(at),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def record_span(
        self,
        name: str,
        parent: Optional[Span],
        start_ms: float,
        end_ms: float,
        category: str = "stage",
        **attrs: Any,
    ) -> Span:
        """Record a span whose edges are already known (closed)."""
        span = self.span(
            name, at=start_ms, parent=parent, category=category, **attrs
        )
        span.finish(at=end_ms)
        return span

    def event(
        self,
        name: str,
        at: Optional[float] = None,
        track: int = GLOBAL_TRACK,
        **attrs: Any,
    ) -> None:
        self.events.append(
            TraceEvent(name=name, ts_ms=self._stamp(at), track=track, attrs=attrs)
        )

    def counter(
        self, name: str, delta: float = 1.0, at: Optional[float] = None
    ) -> float:
        """Bump a cumulative counter and record the new total."""
        total = self._counter_totals.get(name, 0.0) + delta
        self._counter_totals[name] = total
        self.counters.append(
            CounterSample(name=name, ts_ms=self._stamp(at), value=total)
        )
        return total

    def gauge(
        self, name: str, value: float, at: Optional[float] = None
    ) -> None:
        """Record an absolute counter sample (occupancy, sizes)."""
        self.counters.append(
            CounterSample(name=name, ts_ms=self._stamp(at), value=float(value))
        )

    # -- queries ---------------------------------------------------------
    def counter_total(self, name: str) -> float:
        return self._counter_totals.get(name, 0.0)

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.finished]

    def roots(self, category: Optional[str] = None) -> List[Span]:
        """Top-level spans, optionally filtered by category."""
        return [
            span
            for span in self.spans
            if span.parent_id is None
            and (category is None or span.category == category)
        ]

    def children(self, parent: Span) -> List[Span]:
        """Direct children of ``parent``, in recording order."""
        return [
            span for span in self.spans if span.parent_id == parent.span_id
        ]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self.counters.clear()
        self._counter_totals.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(spans={len(self.spans)}, "
            f"events={len(self.events)}, counters={len(self.counters)})"
        )


class _NullSpan(Span):
    """The span all disabled-tracing calls share; every method no-ops."""

    def __init__(self, tracer: "NullTracer") -> None:
        super().__init__(
            tracer=tracer,
            span_id=0,
            parent_id=None,
            track=GLOBAL_TRACK,
            name="null",
            category="null",
            start_ms=0.0,
            attrs={},
        )
        self.end_ms = 0.0

    def finish(self, at: Optional[float] = None) -> "Span":
        return self

    def span(self, name, at=None, category=None, **attrs) -> "Span":
        return self

    def done(self, name, start_ms, end_ms, **attrs) -> "Span":
        return self

    def event(self, name, at=None, **attrs) -> None:
        return None

    def annotate(self, **attrs) -> "Span":
        return self


class NullTracer(Tracer):
    """The default tracer: records nothing, costs one dispatch per call."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_span = _NullSpan(self)

    def attach(self, env) -> "Tracer":
        return self

    def detach(self, env) -> None:
        return None

    def span(self, name, at=None, parent=None, category="span", **attrs) -> Span:
        return self._null_span

    def record_span(
        self, name, parent, start_ms, end_ms, category="stage", **attrs
    ) -> Span:
        return self._null_span

    def event(self, name, at=None, track=GLOBAL_TRACK, **attrs) -> None:
        return None

    def counter(self, name, delta=1.0, at=None) -> float:
        return 0.0

    def gauge(self, name, value, at=None) -> None:
        return None


#: The process-wide disabled tracer (shared; never records).
NULL_TRACER = NullTracer()

#: Active-tracer stack: ``attach``/``enable`` push, ``detach``/``disable``
#: pop.  The top is what env-less layers record against.
_ACTIVE: List[Tracer] = []


def current() -> Tracer:
    """The active tracer, or :data:`NULL_TRACER` when tracing is off."""
    return _ACTIVE[-1] if _ACTIVE else NULL_TRACER


def tracer_for(env) -> Tracer:
    """The tracer an environment's instrumentation should record to.

    Prefers a tracer explicitly attached to ``env``; falls back to the
    active (e.g. ``--trace``-installed) tracer; else the null tracer.
    """
    tracer = getattr(env, "tracer", None)
    if tracer is not None:
        return tracer
    return current()


def enable(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-globally (the CLI ``--trace`` hook)."""
    _ACTIVE.append(tracer)
    return tracer


def disable() -> None:
    """Remove the most recently enabled/attached tracer."""
    if _ACTIVE:
        _ACTIVE.pop()
