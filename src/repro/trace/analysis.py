"""Span-tree analysis: critical paths, stage aggregation, breakdowns.

The §7 latency decomposition of the paper is reconstructed here from
recorded spans: every invocation's root span is segmented into its
stage children (the *critical path*), stages are aggregated across a
run, and the cold/warm/hot table the ``latency`` experiment prints is
assembled from those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.tracer import Span, Tracer

#: Residual below this is float rounding, not a coverage gap (ms).
COVERAGE_EPSILON = 1e-6

#: Label for time inside a span not covered by any child span.
SELF_TIME = "(self)"


@dataclass(frozen=True)
class PathSegment:
    """One leg of a critical path: a leaf interval inside the root."""

    name: str
    start_ms: float
    end_ms: float
    depth: int

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class StageStat:
    """Aggregate of one stage name across many invocations."""

    name: str
    count: int
    total_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


def critical_path(tracer: Tracer, root: Span) -> List[PathSegment]:
    """Segment ``root`` into leaf intervals, in time order.

    Descends into children wherever they cover the parent; intervals no
    child covers are attributed to the parent as ``(self)`` segments.
    For the sequential stage spans the invoker records this is exactly
    the per-stage waterfall; overlapping children (concurrent work)
    are handled by always descending into the earliest-starting child.
    """
    if not root.finished:
        raise ValueError(f"span {root.name!r} is still open")
    segments: List[PathSegment] = []

    def descend(span: Span, depth: int) -> None:
        children = sorted(
            (c for c in tracer.children(span) if c.finished),
            key=lambda c: (c.start_ms, c.span_id),
        )
        cursor = span.start_ms
        for child in children:
            start = max(child.start_ms, cursor)
            if start > cursor:
                segments.append(
                    PathSegment(SELF_TIME, cursor, start, depth)
                )
            descend(child, depth + 1)
            cursor = max(cursor, child.end_ms)
        if cursor < span.end_ms:
            segments.append(
                PathSegment(SELF_TIME, cursor, span.end_ms, depth)
            )
        if not children:
            # A leaf *is* its own segment; replace the self filler.
            if segments and segments[-1].name == SELF_TIME and (
                segments[-1].start_ms == span.start_ms
                and segments[-1].end_ms == span.end_ms
                and segments[-1].depth == depth
            ):
                segments.pop()
            segments.append(
                PathSegment(span.name, span.start_ms, span.end_ms, depth)
            )

    descend(root, 0)
    return segments


def coverage_residual(tracer: Tracer, root: Span) -> float:
    """Root duration minus the summed durations of its direct children.

    Zero (within float rounding) means the stage spans decompose the
    end-to-end latency exactly — the property the ``latency``
    experiment asserts for every traced invocation.
    """
    if not root.finished:
        raise ValueError(f"span {root.name!r} is still open")
    covered = sum(
        child.duration_ms
        for child in tracer.children(root)
        if child.finished
    )
    return root.duration_ms - covered


def stage_totals(
    tracer: Tracer, roots: Sequence[Span]
) -> Dict[str, StageStat]:
    """Aggregate direct-child stage durations across ``roots``.

    Returns stage name -> :class:`StageStat`, in first-seen order.
    """
    order: List[str] = []
    counts: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for root in roots:
        for child in tracer.children(root):
            if not child.finished:
                continue
            if child.name not in counts:
                order.append(child.name)
                counts[child.name] = 0
                totals[child.name] = 0.0
            counts[child.name] += 1
            totals[child.name] += child.duration_ms
    return {
        name: StageStat(name=name, count=counts[name], total_ms=totals[name])
        for name in order
    }


def group_by_attr(
    roots: Sequence[Span], attr: str
) -> Dict[str, List[Span]]:
    """Partition roots by one attribute value (e.g. ``path``)."""
    groups: Dict[str, List[Span]] = {}
    for root in roots:
        key = str(root.attrs.get(attr, "?"))
        groups.setdefault(key, []).append(root)
    return groups


def breakdown_rows(
    tracer: Tracer,
    roots: Sequence[Span],
    group_attr: str = "path",
    group_order: Optional[Sequence[str]] = None,
) -> List[Tuple[str, str, float, float]]:
    """The §7-style decomposition table rows from invocation roots.

    Returns ``(group, stage, mean_ms, share_percent)`` rows: one row
    per stage per group plus an ``end-to-end`` summary row per group.
    Shares are of the group's mean end-to-end latency.
    """
    groups = group_by_attr(roots, group_attr)
    if group_order is None:
        names = list(groups)
    else:
        names = [name for name in group_order if name in groups]
        names += [name for name in groups if name not in names]
    rows: List[Tuple[str, str, float, float]] = []
    for name in names:
        members = [root for root in groups[name] if root.finished]
        if not members:
            continue
        end_to_end = sum(root.duration_ms for root in members) / len(members)
        for stage in stage_totals(tracer, members).values():
            mean = stage.total_ms / len(members)
            share = 100.0 * mean / end_to_end if end_to_end else 0.0
            rows.append((name, stage.name, mean, share))
        rows.append((name, "end-to-end", end_to_end, 100.0))
    return rows
