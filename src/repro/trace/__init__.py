"""Invocation tracing on the simulated clock (§7 decomposition).

The tracer records nested spans, instant events and counters stamped
with sim-time milliseconds, without ever touching the event schedule —
a traced run is byte-identical to an untraced one.  Analysis turns the
span trees into the paper's per-stage latency decomposition; exporters
write Perfetto-loadable Chrome trace-event JSON and ASCII waterfalls.

Typical use::

    from repro.trace import Tracer
    from repro.trace.export import write_chrome_trace

    tracer = Tracer().attach(env)     # instrumentation now records
    node.invoke_sync(nop_function())
    tracer.detach(env)
    write_chrome_trace("trace.json", tracer)   # load in Perfetto
"""

from repro.trace.tracer import (
    NULL_TRACER,
    CounterSample,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    current,
    disable,
    enable,
    tracer_for,
)

__all__ = [
    "CounterSample",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "current",
    "disable",
    "enable",
    "tracer_for",
]
