"""Figure 4 — OpenWhisk platform throughput vs. function set size.

For each trial the set size of unique NOP functions doubles (64 …
65536); 32 client threads send a continuous stream of invocations, and
throughput is read from the stable region of the trial.  Absolute rps
is not stated in the paper; what the figure establishes — and what this
harness checks — is the *shape*: Linux wins by ~21% while its container
cache covers the working set, collapses once it saturates, and ends up
~52x slower on the mostly-unique workload, while SEUSS holds a flat,
shim-limited plateau.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.cluster import FaasCluster
from repro.sim import Environment
from repro.workload.functions import unique_nop_set
from repro.workload.generator import run_trial

#: The paper's trial ladder.
DEFAULT_SET_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)
DEFAULT_WORKERS = 32
DEFAULT_INVOCATIONS = 4000
DEFAULT_SEED = 0xF16_4
#: Fraction of each trial discarded as warmup when reading throughput.
STEADY_WARMUP_FRACTION = 0.5

#: Paper headline ratios.
PAPER_SMALL_SET_LINUX_ADVANTAGE = 1.21  # Linux 21% faster at 64 fns
PAPER_LARGE_SET_SEUSS_SPEEDUP = 52.0  # "up to a 52x speedup"


@dataclass
class ThroughputPoint:
    set_size: int
    linux_rps: float
    seuss_rps: float
    linux_error_rate: float
    seuss_error_rate: float

    @property
    def seuss_speedup(self) -> float:
        return self.seuss_rps / self.linux_rps if self.linux_rps else float("inf")


def measure_point(
    set_size: int,
    backend: str,
    invocations: int = DEFAULT_INVOCATIONS,
    workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, float]:
    """One trial: throughput and error rate for one backend."""
    env = Environment()
    functions = unique_nop_set(set_size)
    if backend == "seuss":
        cluster = FaasCluster.with_seuss_node(env)
    elif backend == "linux":
        cluster = FaasCluster.with_linux_node(env)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    trial = run_trial(
        cluster, functions, invocation_count=invocations, workers=workers, seed=seed
    )
    return {
        "rps": trial.metrics.throughput_per_s(STEADY_WARMUP_FRACTION),
        "error_rate": trial.error_rate,
    }


def run_figure4(
    set_sizes: Sequence[int] = DEFAULT_SET_SIZES,
    invocations: int = DEFAULT_INVOCATIONS,
    workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="figure4",
        title="OpenWhisk platform throughput vs. unique-function set size",
        headers=[
            "set size",
            "Linux (req/s)",
            "SEUSS (req/s)",
            "SEUSS/Linux",
            "Linux err %",
        ],
    )
    points: List[ThroughputPoint] = []
    for set_size in set_sizes:
        linux = measure_point(set_size, "linux", invocations, workers, seed)
        seuss = measure_point(set_size, "seuss", invocations, workers, seed)
        point = ThroughputPoint(
            set_size=set_size,
            linux_rps=linux["rps"],
            seuss_rps=seuss["rps"],
            linux_error_rate=linux["error_rate"],
            seuss_error_rate=seuss["error_rate"],
        )
        points.append(point)
        result.add_row(
            set_size,
            point.linux_rps,
            point.seuss_rps,
            point.seuss_speedup,
            100.0 * point.linux_error_rate,
        )

    first, last = points[0], points[-1]
    if first.seuss_rps:
        result.add_note(
            "smallest set size: Linux/SEUSS = "
            f"{first.linux_rps / first.seuss_rps:.2f}x "
            f"(paper: {PAPER_SMALL_SET_LINUX_ADVANTAGE:.2f}x)"
        )
    crossover = next(
        (p.set_size for p in points if p.seuss_rps > p.linux_rps), None
    )
    if crossover is not None:
        result.add_note(
            f"SEUSS overtakes Linux at a set size of {crossover} functions "
            "(soon after the Linux cache saturates)"
        )
    result.add_note(
        "largest set size: SEUSS/Linux = "
        f"{last.seuss_speedup:.1f}x (paper: up to "
        f"{PAPER_LARGE_SET_SEUSS_SPEEDUP:.0f}x)"
    )
    result.raw["points"] = points
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="figure4",
        title="OpenWhisk platform throughput vs. unique-function set size",
        entry=run_figure4,
        profiles={
            "full": {},
            "quick": {"set_sizes": (64, 1024, 65536), "invocations": 1500},
            "smoke": {"set_sizes": (64, 1024), "invocations": 400},
        },
        default_seed=DEFAULT_SEED,
        tags=("paper", "figure", "slow"),
    )
)
