"""Common experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.metrics.reporter import format_table


@dataclass
class ExperimentResult:
    """A reproduced table/figure: labeled rows plus free-form notes."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Raw series/objects for programmatic consumers (plots, tests).
    raw: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        row = list(values)
        if len(row) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(row)} values, "
                f"expected {len(self.headers)}"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", ""]
        parts.append(format_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


#: Experiment-id -> zero-argument callable returning results.  Filled by
#: :mod:`repro.experiments.runner`.
registry: Dict[str, Callable[..., List[ExperimentResult]]] = {}
