"""Common experiment plumbing: results, declarative specs, registry.

An experiment module defines one ``run_*`` entry point per table/figure
and registers an :class:`ExperimentSpec` describing it: the id, the
entry point, the named scale profiles (``full``/``quick``/``smoke``),
the default seed and the tags.  The module-level :data:`registry` is
the single source of truth the CLI, the parallel suite executor and the
tests all resolve experiments through.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError, ExperimentLookupError
from repro.metrics.reporter import format_table


@dataclass
class ExperimentResult:
    """A reproduced table/figure: labeled rows plus free-form notes."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Raw series/objects for programmatic consumers (plots, tests).
    raw: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        row = list(values)
        if len(row) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(row)} values, "
                f"expected {len(self.headers)}"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", ""]
        parts.append(format_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


#: Scale-profile fallback chain: a spec that does not declare the
#: requested profile runs the next-larger one (``smoke`` -> ``quick``
#: -> ``full``); ``full`` itself defaults to the entry point's own
#: defaults (empty kwargs).
PROFILE_FALLBACK: Dict[str, str] = {"smoke": "quick", "quick": "full"}

#: The canonical profile names, largest scale first.
KNOWN_PROFILES: Tuple[str, ...] = ("full", "quick", "smoke")


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproducible table/figure.

    ``entry`` is the module-level ``run_*`` callable returning a single
    :class:`ExperimentResult`; ``profiles`` maps a scale-profile name to
    the keyword arguments that entry point is called with at that scale.
    """

    experiment_id: str
    title: str
    entry: Callable[..., ExperimentResult]
    profiles: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    default_seed: Optional[int] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigError("experiment_id must be non-empty")
        if not callable(self.entry):
            raise ConfigError(
                f"{self.experiment_id}: entry must be callable, "
                f"got {type(self.entry).__name__}"
            )
        # Normalize to plain (hash-stable, copied) containers so frozen
        # specs cannot be mutated through shared references.
        object.__setattr__(
            self,
            "profiles",
            {name: dict(kwargs) for name, kwargs in self.profiles.items()},
        )
        object.__setattr__(self, "tags", tuple(self.tags))
        for name in self.profiles:
            if name not in KNOWN_PROFILES:
                raise ConfigError(
                    f"{self.experiment_id}: unknown profile {name!r}; "
                    f"known profiles: {list(KNOWN_PROFILES)}"
                )

    @property
    def profile_names(self) -> Tuple[str, ...]:
        """Declared + implied profiles, largest scale first."""
        return tuple(
            name
            for name in KNOWN_PROFILES
            if name == "full" or name in self.profiles
        )

    def resolve_profile(self, name: str) -> Tuple[str, Dict[str, object]]:
        """(resolved profile name, entry kwargs) for ``name``.

        Walks the fallback chain for undeclared profiles; ``full``
        always resolves (to the entry point's defaults).
        """
        if name not in KNOWN_PROFILES:
            raise ExperimentLookupError(
                f"{self.experiment_id}: unknown profile {name!r}; "
                f"known profiles: {list(KNOWN_PROFILES)}"
            )
        while name not in self.profiles and name != "full":
            name = PROFILE_FALLBACK[name]
        return name, dict(self.profiles.get(name, {}))

    def accepts_seed(self) -> bool:
        """Whether the entry point takes a ``seed`` keyword."""
        try:
            parameters = inspect.signature(self.entry).parameters
        except (TypeError, ValueError):  # builtins, odd callables
            return False
        if "seed" in parameters:
            return True
        return any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )

    def run(
        self,
        profile: str = "full",
        seed: Optional[int] = None,
        **overrides: object,
    ) -> ExperimentResult:
        """Run the entry point at ``profile`` scale.

        ``seed`` (or, failing that, :attr:`default_seed`) is forwarded
        only when the entry point accepts one, so seed-less experiments
        stay byte-identical regardless of suite seeding.
        """
        _, kwargs = self.resolve_profile(profile)
        kwargs.update(overrides)
        effective_seed = seed if seed is not None else self.default_seed
        if effective_seed is not None and self.accepts_seed():
            kwargs.setdefault("seed", effective_seed)
        result = self.entry(**kwargs)
        if not isinstance(result, ExperimentResult):
            raise ConfigError(
                f"{self.experiment_id}: entry returned "
                f"{type(result).__name__}, expected ExperimentResult"
            )
        return result


class ExperimentRegistry:
    """Typed experiment registry: id -> :class:`ExperimentSpec`.

    Registration order is display order (``seuss-repro --list``, the
    ``all`` expansion).  Re-registering an identical spec is a no-op so
    repeated :func:`repro.experiments.load_all` calls — including from
    suite worker processes — stay idempotent; conflicting ids fail loud.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        existing = self._specs.get(spec.experiment_id)
        if existing is not None:
            if existing == spec:
                return existing
            raise ConfigError(
                f"experiment {spec.experiment_id!r} already registered "
                "with a different spec"
            )
        self._specs[spec.experiment_id] = spec
        return spec

    def get(self, experiment_id: str) -> ExperimentSpec:
        try:
            return self._specs[experiment_id]
        except KeyError:
            raise ExperimentLookupError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(self._specs)}"
            ) from None

    def ids(self) -> List[str]:
        return list(self._specs)

    def specs(self) -> List[ExperimentSpec]:
        return list(self._specs.values())

    def select(
        self,
        names: Optional[Sequence[str]] = None,
        tags: Optional[Sequence[str]] = None,
    ) -> List[ExperimentSpec]:
        """Specs matching ``names`` (``all``/empty = everything) that
        carry every tag in ``tags``, in registration order."""
        if not names or "all" in names:
            chosen = self.specs()
        else:
            chosen = [self.get(name) for name in names]
        if tags:
            chosen = [
                spec
                for spec in chosen
                if all(tag in spec.tags for tag in tags)
            ]
        return chosen

    def sort(self, key: Callable[[ExperimentSpec], object]) -> None:
        """Stable-reorder the registry (and thus display order) by ``key``."""
        ordered = sorted(self._specs.values(), key=key)
        self._specs = {spec.experiment_id: spec for spec in ordered}

    def clear(self) -> None:
        self._specs.clear()

    def __contains__(self, experiment_id: object) -> bool:
        return experiment_id in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide experiment registry.  Experiment modules register
#: their spec at import time; :func:`repro.experiments.load_all`
#: imports every module and returns this fully populated.
registry = ExperimentRegistry()
