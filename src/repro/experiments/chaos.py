"""Chaos — resilience under injected faults (extension beyond the paper).

Sweeps a fault-rate scale over the base chaos plan (node crash p=0.01,
snapshot corruption p=0.05 on capture and on restore, bus drop p=0.02,
slow cores p=0.02) against a two-node SEUSS cluster with retries and
circuit breakers enabled, and reports the degradation curve:
client-visible success rate and latency percentiles versus fault rate.

Two rows anchor the curve.  ``off`` runs with no resilience machinery
at all; ``0.00x`` runs with the full machinery installed but every
probability at zero — the two produce identical latency columns, which
is the zero-overhead guarantee made measurable.  At 1x (the acceptance
configuration) the platform must hold >= 99% success: crashes are
absorbed by retry + breaker routing, corrupted snapshots cost one
quarantine + one cold rebuild each, and dropped bus messages are
redelivered — degradation, never collapse.

Idle-UC caching is disabled for this scenario so every non-cold
invocation restores from a snapshot, keeping the integrity path (the
SEUSS-specific claim) under continuous exercise.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.cluster import FaasCluster
from repro.faas.controller import RetryPolicy
from repro.faas.health import BreakerPolicy
from repro.faults import FaultPlan
from repro.metrics.resilience import ResilienceReport, goodput_per_sec
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import unique_nop_set
from repro.workload.generator import TrialResult, run_trial

#: The acceptance-criteria fault mix at scale 1.0.
BASE_PLAN = FaultPlan(
    node_crash_p=0.01,
    node_restart_ms=300.0,
    snapshot_corrupt_capture_p=0.05,
    snapshot_corrupt_restore_p=0.05,
    bus_drop_p=0.02,
    bus_redeliver_ms=25.0,
    slow_core_p=0.02,
    slow_core_factor=4.0,
)

#: Retry budget sized so backoffs span a node-restart window.
CHAOS_RETRIES = RetryPolicy(max_attempts=12)
CHAOS_BREAKER = BreakerPolicy(failure_threshold=3, cooldown_ms=150.0)

DEFAULT_SCALES = (0.0, 0.5, 1.0, 2.0)
DEFAULT_INVOCATIONS = 1000
DEFAULT_SET_SIZE = 32
DEFAULT_WORKERS = 8
DEFAULT_NODES = 2


def run_chaos_trial(
    plan: Optional[FaultPlan],
    invocations: int = DEFAULT_INVOCATIONS,
    set_size: int = DEFAULT_SET_SIZE,
    workers: int = DEFAULT_WORKERS,
    nodes: int = DEFAULT_NODES,
    seed: int = 0xC405,
) -> "tuple[TrialResult, ResilienceReport]":
    """One chaos trial; ``plan=None`` runs with no resilience wiring."""
    env = Environment()
    functions = unique_nop_set(set_size)
    config = SeussConfig(cache_idle_ucs=False)
    if plan is None:
        cluster = FaasCluster.with_seuss_node(env, config=config)
    else:
        cluster = FaasCluster.with_seuss_node(
            env,
            config=config,
            faults=plan,
            retries=CHAOS_RETRIES,
            breaker=CHAOS_BREAKER,
        )
        for _ in range(nodes - 1):
            node = SeussNode(env, config=config, costs=cluster.costs)
            node.initialize_sync()
            cluster.add_node(node)
    trial = run_trial(
        cluster,
        functions,
        invocation_count=invocations,
        workers=workers,
        seed=seed,
    )
    return trial, ResilienceReport.from_cluster(cluster)


def run_chaos(
    scales: Sequence[float] = DEFAULT_SCALES,
    invocations: int = DEFAULT_INVOCATIONS,
    set_size: int = DEFAULT_SET_SIZE,
    workers: int = DEFAULT_WORKERS,
    nodes: int = DEFAULT_NODES,
    seed: int = 0xC405,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="chaos",
        title="Resilience under injected faults (fault-rate sweep)",
        headers=[
            "fault scale",
            "success %",
            "p50 ms",
            "p99 ms",
            "retries",
            "crashes",
            "breaker opens",
            "quarantined",
            "bus drops",
        ],
    )
    reports = {}
    trials = {}

    def add_row(label: str, trial: TrialResult, report: ResilienceReport):
        summary = trial.metrics.recorder.summary()
        result.add_row(
            label,
            round(report.success_rate * 100.0, 2),
            round(summary.p50, 2),
            round(summary.p99, 2),
            report.retried,
            report.node_crashes,
            report.breaker_opens,
            report.snapshots_quarantined,
            report.bus_dropped,
        )
        reports[label] = report
        trials[label] = trial

    # Baseline: resilience machinery absent entirely.
    trial, report = run_chaos_trial(
        None, invocations, set_size, workers, nodes, seed
    )
    add_row("off", trial, report)

    for scale in scales:
        trial, report = run_chaos_trial(
            BASE_PLAN.scaled(scale), invocations, set_size, workers, nodes, seed
        )
        add_row(f"{scale:.2f}x", trial, report)

    result.raw["reports"] = reports
    result.raw["trials"] = trials
    # Goodput / wasted-work aggregates (raw only, so the table text is
    # unchanged): with no deadlines attached goodput degrades to plain
    # completed-requests-per-second.
    result.raw["aggregates"] = {
        label: {
            "goodput_per_sec": goodput_per_sec(
                trial.results,
                trial.metrics.finished_ms - trial.metrics.started_ms,
            ),
            "wasted_work_fraction": reports[label].wasted_work_fraction,
        }
        for label, trial in trials.items()
    }
    result.add_note(
        "'off' = no resilience wiring; '0.00x' = full wiring, zero "
        "probabilities — identical latency columns demonstrate the "
        "zero-overhead guarantee"
    )
    result.add_note(
        f"{nodes}-node SEUSS cluster, idle-UC caching off, retries "
        f"max_attempts={CHAOS_RETRIES.max_attempts}, breaker threshold="
        f"{CHAOS_BREAKER.failure_threshold}/cooldown={CHAOS_BREAKER.cooldown_ms}ms"
    )
    result.add_note(
        "corrupted snapshots are quarantined on checksum mismatch and "
        "rebuilt by one cold start; dropped bus messages redeliver after "
        f"{BASE_PLAN.bus_redeliver_ms}ms"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="chaos",
        title="Resilience under injected faults (fault-rate sweep)",
        entry=run_chaos,
        profiles={
            "full": {},
            "quick": {"scales": (0.0, 1.0), "invocations": 300},
            "smoke": {"scales": (1.0,), "invocations": 100},
        },
        default_seed=0xC405,
        tags=("extension", "chaos", "slow"),
    )
)
