"""Density — content-addressed page dedup (extension beyond the paper).

Table 3's headline is cached-state density: 54k cached functions where
containers manage 3k.  That win comes entirely from lineage-confined
snapshot stacks — yet pages that are byte-identical *across* different
functions' snapshots (compiled stdlib, interpreter heap shapes) are
still stored once per snapshot.  This experiment measures what the
:mod:`repro.mem.dedup` subsystem buys on top:

* **Before/after density** — cold-start ``functions`` distinct
  same-tenant NOPs, then count cached functions per GB of *physical*
  snapshot memory.  Three arms: no dedup (the paper's configuration),
  capture-time dedup (SEUSS-style: merges are free, established the
  moment a snapshot is taken), and a retroactive scanner (KSM-style:
  the same duplicate fraction, but merges arrive over time at a
  bounded scan rate with the scan cost charged on the sim clock).
* **Sensitivity sweep** — dedup ratio x scan cost: how the density
  gain and the CPU bill move with the duplicate-content fraction and
  the scanner's pages-per-second throttle.

Security posture rides along: every arm's merge scope is audited with
:func:`repro.seuss.security.audit_dedup` — tenant scope (the default)
never crosses a trust boundary; only a ``global`` scope would flag the
KSM dedup side channel (§5).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.records import FunctionSpec
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.seuss.security import audit_dedup
from repro.sim import Environment
from repro.units import pages_to_mb
from repro.workload.functions import nop_function

#: Distinct same-tenant functions cold-started per arm.  Enough that
#: the one-per-node runtime base snapshot amortizes out of the density
#: denominator (Table 3 measures at cache scale, not at a handful of
#: functions).
DEFAULT_FUNCTIONS = 128
#: Sim time the retroactive arm lets its scanner run after the last
#: cold start (KSM needs time; capture-time dedup does not).
DEFAULT_SCAN_WINDOW_MS = 60_000.0
#: Duplicate-content fractions swept by the sensitivity table.
DEFAULT_FRACTIONS = (0.35, 0.55, 0.75)
#: Scanner throttles swept by the sensitivity table (pages/s).
DEFAULT_SCAN_RATES = (10_000.0, 25_000.0, 100_000.0)
#: Short window for the sensitivity sweep: long enough for the fastest
#: throttle to converge, short enough that the slow ones visibly lag
#: (the whole point of the rate knob).
DEFAULT_SWEEP_WINDOW_MS = 2_000.0


def _density_functions(count: int) -> List[FunctionSpec]:
    """``count`` distinct functions owned by one tenant.

    One owner keeps every snapshot in a single ``tenant`` merge
    namespace — the safe default scope dedups exactly this case.
    """
    return [
        nop_function(name=f"fn-{index}", owner="density")
        for index in range(count)
    ]


def _snapshot_phys_pages(node: SeussNode) -> int:
    """Physical frames holding cached snapshots (private + shared)."""
    return node.allocator.category_pages("snapshot") + node.allocator.category_pages(
        "snapshot_shared"
    )


def run_density_trial(
    functions: int,
    page_dedup: bool = False,
    dedup_scanner: bool = False,
    duplicate_fraction: float = 0.55,
    scan_rate_pages_per_s: float = 25_000.0,
    scan_window_ms: float = DEFAULT_SCAN_WINDOW_MS,
) -> Tuple[SeussNode, int, int]:
    """Cold-start ``functions`` distinct NOPs on one configured node.

    Returns ``(node, cached_count, physical_snapshot_pages)``.  Idle-UC
    caching is off so the measurement isolates snapshot memory (Table 3
    measures cached *snapshots*, not parked instances).
    """
    env = Environment()
    config = SeussConfig(
        cache_idle_ucs=False,
        page_dedup=page_dedup,
        dedup_scope="tenant",
        dedup_duplicate_fraction=duplicate_fraction,
        dedup_scanner=dedup_scanner,
        dedup_scan_rate_pages_per_s=scan_rate_pages_per_s,
    )
    node = SeussNode(env, config=config)
    node.initialize_sync()
    for fn in _density_functions(functions):
        node.invoke_sync(fn)
    if dedup_scanner:
        # Retroactive merging arrives over time; give the scanner its
        # window, then park it.
        env.run(until=env.now + scan_window_ms)
        node.dedup.stop_scanner()
        env.run()
    return node, len(node.snapshot_cache), _snapshot_phys_pages(node)


def _functions_per_gb(cached: int, phys_pages: int) -> float:
    held_gb = pages_to_mb(phys_pages) / 1024.0
    return cached / held_gb if held_gb > 0 else 0.0


def run_density(
    functions: int = DEFAULT_FUNCTIONS,
    duplicate_fraction: float = 0.55,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    scan_rates: Sequence[float] = DEFAULT_SCAN_RATES,
    scan_window_ms: float = DEFAULT_SCAN_WINDOW_MS,
    sweep_window_ms: float = DEFAULT_SWEEP_WINDOW_MS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="density",
        title="Cached-function density: content-addressed page dedup",
        headers=[
            "arm",
            "scope",
            "cached fns",
            "snapshot MB",
            "fns/GB",
            "gain x",
            "scan ms",
            "side channel",
        ],
    )
    arms = (
        ("baseline", dict(page_dedup=False, dedup_scanner=False)),
        ("capture-dedup", dict(page_dedup=True, dedup_scanner=False)),
        ("retro-scanner", dict(page_dedup=False, dedup_scanner=True)),
    )
    aggregates = {}
    baseline_density = None
    for arm_name, knobs in arms:
        node, cached, phys_pages = run_density_trial(
            functions,
            duplicate_fraction=duplicate_fraction,
            scan_window_ms=scan_window_ms,
            **knobs,
        )
        density = _functions_per_gb(cached, phys_pages)
        if arm_name == "baseline":
            baseline_density = density
        gain = density / baseline_density if baseline_density else 0.0
        scan_ms = node.dedup.scan_ms if node.dedup is not None else 0.0
        audit = audit_dedup(
            "tenant", retroactive=knobs["dedup_scanner"]
        )
        result.add_row(
            arm_name,
            "tenant" if node.dedup is not None else "-",
            cached,
            round(pages_to_mb(phys_pages), 1),
            round(density, 1),
            round(gain, 2),
            round(scan_ms, 0),
            "yes" if audit.side_channel else "no",
        )
        aggregates[arm_name] = {
            "cached": cached,
            "physical_pages": phys_pages,
            "functions_per_gb": density,
            "gain": gain,
            "scan_ms": scan_ms,
            "merged_pages": (
                node.dedup.merged_pages if node.dedup is not None else 0
            ),
        }
    # Sensitivity: duplicate fraction x scan rate for the retroactive
    # scanner (capture-time dedup has no rate knob — merging is free).
    sweep = {}
    for fraction in fractions:
        for rate in scan_rates:
            node, cached, phys_pages = run_density_trial(
                functions,
                dedup_scanner=True,
                duplicate_fraction=fraction,
                scan_rate_pages_per_s=rate,
                scan_window_ms=sweep_window_ms,
            )
            density = _functions_per_gb(cached, phys_pages)
            gain = density / baseline_density if baseline_density else 0.0
            scanner = node.dedup.scanner
            result.add_row(
                f"sweep f={fraction:.2f}",
                f"{rate / 1000:.0f}k pg/s",
                cached,
                round(pages_to_mb(phys_pages), 1),
                round(density, 1),
                round(gain, 2),
                round(scanner.stats.scan_ms, 0),
                "no",
            )
            sweep[(fraction, rate)] = {
                "functions_per_gb": density,
                "gain": gain,
                "scan_ms": scanner.stats.scan_ms,
                "merged_pages": scanner.stats.merged_pages,
            }
    result.raw["aggregates"] = aggregates
    result.raw["sweep"] = {
        f"{fraction}:{rate}": value
        for (fraction, rate), value in sweep.items()
    }
    result.add_note(
        f"{functions} distinct same-tenant NOP functions cold-started per "
        f"arm; fns/GB = cached snapshots per GB of physical snapshot "
        f"memory (shared frames counted once)"
    )
    result.add_note(
        f"capture-dedup merges duplicate-content chunks "
        f"(fraction {duplicate_fraction:.2f}) at snapshot time for free; "
        f"the retro scanner reaches the same duplicate pool over "
        f"{scan_window_ms / 1000:.0f} s of scanning with the walk charged "
        f"on the sim clock (scan ms)"
    )
    result.add_note(
        f"sweep rows: retroactive scanner after a {sweep_window_ms / 1000:.0f} s "
        "window — the throttle (pages/s) bounds how much of the duplicate "
        "pool (fraction f) has merged by then; scan ms is the same for "
        "every throttle because a saturated scanner burns its whole "
        "interval regardless of how many pages one wake covers"
    )
    result.add_note(
        "tenant scope never merges across trust boundaries, so no arm "
        "flags the KSM dedup side channel; a global scope would "
        "(audit_dedup in repro.seuss.security)"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="density",
        title="Cached-function density: content-addressed page dedup",
        entry=run_density,
        profiles={
            "full": {},
            "quick": {
                "functions": 64,
                "fractions": (0.55,),
                "scan_rates": (25_000.0,),
                "scan_window_ms": 20_000.0,
            },
            "smoke": {
                "functions": 24,
                "fractions": (0.55,),
                "scan_rates": (25_000.0,),
                "scan_window_ms": 5_000.0,
            },
        },
        tags=("extension", "density", "slow"),
    )
)
