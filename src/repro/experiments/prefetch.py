"""Working-set prefetch evaluation — lazy vs. recorded deploys.

The REAP-style layer (:mod:`repro.mem.workingset`) records the page
intervals each snapshot's first invocation demand-faults and replays
them as one batched resolution on later deploys.  This experiment
measures what that buys on every deployment path:

* **local** — cold and warm NOP latency and pages demand-copied, lazy
  vs. prefetched, with the hot path asserted identical (it never
  touches the prefetch machinery);
* **remote** — remote-warm latency per transfer strategy, where the
  ``RECORDED`` strategy sizes its upfront set from the shipped manifest
  instead of a constant fraction.

The lazy baselines run on nodes with ``prefetch_working_sets=False``
(the default), so they are byte-for-byte the numbers every other
experiment reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.distributed.cluster import DistributedSeussCluster
from repro.distributed.transfer import TransferStrategy, transfer_plan
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.records import InvocationPath, NodeInvocation
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import nop_function

#: Strategy display order for the remote section.
STRATEGY_ORDER = (
    TransferStrategy.FULL_COPY,
    TransferStrategy.ON_DEMAND,
    TransferStrategy.COLORED,
    TransferStrategy.RECORDED,
)


def _fresh_node(prefetch: bool) -> SeussNode:
    node = SeussNode(
        Environment(), SeussConfig(prefetch_working_sets=prefetch)
    )
    node.initialize_sync()
    return node


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def measure_local_paths(functions: int) -> Dict[str, Dict[str, List[NodeInvocation]]]:
    """Drive cold/warm/hot invocations on a lazy and a prefetch node.

    On the prefetch node the *recording* invocations (the first cold in
    the node's lifetime records the runtime manifest; each function's
    first warm records its function manifest) are driven separately and
    excluded, so the measured invocations all replay a manifest.
    """
    outcomes: Dict[str, Dict[str, List[NodeInvocation]]] = {
        "lazy": {"cold": [], "warm": [], "hot": []},
        "prefetch": {"cold": [], "warm": [], "hot": []},
    }

    lazy = _fresh_node(False)
    for index in range(functions):
        fn = nop_function(owner=f"pf-lazy-{index}")
        cold = lazy.invoke_sync(fn)
        lazy.uc_cache.drop_function(fn.key)
        warm = lazy.invoke_sync(fn)
        hot = lazy.invoke_sync(fn)
        outcomes["lazy"]["cold"].append(cold)
        outcomes["lazy"]["warm"].append(warm)
        outcomes["lazy"]["hot"].append(hot)

    node = _fresh_node(True)
    # Recording run: one throwaway function's cold start records the
    # runtime working set every later cold start prefetches.
    warmup = nop_function(owner="pf-warmup")
    recording = node.invoke_sync(warmup)
    assert recording.path is InvocationPath.COLD
    assert recording.pages_prefetched == 0  # nothing recorded yet
    node.uc_cache.drop_function(warmup.key)
    for index in range(functions):
        fn = nop_function(owner=f"pf-rec-{index}")
        cold = node.invoke_sync(fn)  # prefetches the runtime manifest
        node.uc_cache.drop_function(fn.key)
        first_warm = node.invoke_sync(fn)  # records the fn manifest
        assert first_warm.pages_prefetched == 0
        node.uc_cache.drop_function(fn.key)
        warm = node.invoke_sync(fn)  # prefetches the fn manifest
        hot = node.invoke_sync(fn)
        outcomes["prefetch"]["cold"].append(cold)
        outcomes["prefetch"]["warm"].append(warm)
        outcomes["prefetch"]["hot"].append(hot)

    for mode, paths in outcomes.items():
        expected = {
            "cold": InvocationPath.COLD,
            "warm": InvocationPath.WARM,
            "hot": InvocationPath.HOT,
        }
        for label, results in paths.items():
            for outcome in results:
                assert outcome.success, (mode, label, outcome.error)
                assert outcome.path is expected[label], (mode, label)
    return outcomes


def measure_remote_warm(strategy: TransferStrategy, prefetch: bool):
    """One remote-warm deployment under ``strategy``; returns
    (ClusterInvocation, upfront_mb, manifest_or_None)."""
    cluster = DistributedSeussCluster(
        Environment(),
        node_count=2,
        strategy=strategy,
        config=SeussConfig(prefetch_working_sets=prefetch),
    )
    fn = nop_function(owner=f"pf-remote-{strategy.value}-{int(prefetch)}")
    cold = cluster.invoke_sync(fn)
    home = cold.node_id
    cluster.nodes[home].uc_cache.drop_function(fn.key)
    if prefetch:
        # Record the function manifest at home before it is shipped.
        warm = cluster.invoke_sync(fn)
        assert warm.path == "warm", warm.path
        cluster.nodes[home].uc_cache.drop_function(fn.key)
    # Load the home node so the scheduler places the next invocation on
    # the peer, forcing the remote-warm path.
    cluster._in_flight[home] = 10
    remote = cluster.invoke_sync(fn)
    assert remote.path == "remote_warm", remote.path
    manifest = cluster.nodes[home].working_sets.get(fn.key)
    plan = transfer_plan(remote.transferred_mb, strategy, manifest=manifest)
    upfront_mb = 0.0
    if remote.transferred_mb:
        upfront_mb = remote.transferred_mb * (
            plan.upfront_ms - cluster.interconnect.latency_ms
        ) / (remote.transferred_mb * cluster.interconnect.ms_per_mb)
    return remote, upfront_mb, manifest


def run_prefetch(functions: int = 12) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="prefetch",
        title="Working-set record-and-prefetch vs. lazy demand faults",
        headers=[
            "path",
            "lazy (ms)",
            "prefetch (ms)",
            "saved (ms)",
            "lazy copied (pages)",
            "prefetch copied (pages)",
            "prefetched (pages)",
        ],
    )

    local = measure_local_paths(functions)
    for label in ("cold", "warm", "hot"):
        lazy_runs = local["lazy"][label]
        pf_runs = local["prefetch"][label]
        lazy_ms = _mean([r.latency_ms for r in lazy_runs])
        pf_ms = _mean([r.latency_ms for r in pf_runs])
        lazy_copied = _mean([float(r.pages_copied) for r in lazy_runs])
        pf_copied = _mean([float(r.pages_copied) for r in pf_runs])
        prefetched = _mean([float(r.pages_prefetched) for r in pf_runs])
        if label == "hot":
            # The hot path never deploys, so it must be unchanged.  The
            # two nodes' clocks sit at different absolute offsets (the
            # prefetch node's earlier deploys ran faster), so latency
            # subtraction can differ in the final ulps — allow that and
            # nothing more.
            assert abs(pf_ms - lazy_ms) < 1e-9, (pf_ms, lazy_ms)
            assert prefetched == 0.0
        else:
            assert pf_ms < lazy_ms, (label, pf_ms, lazy_ms)
        result.add_row(
            label,
            round(lazy_ms, 4),
            round(pf_ms, 4),
            round(lazy_ms - pf_ms, 4),
            round(lazy_copied, 1),
            round(pf_copied, 1),
            round(prefetched, 1),
        )

    recorded_upfront_mb = None
    for strategy in STRATEGY_ORDER:
        lazy_remote, lazy_upfront, _ = measure_remote_warm(strategy, False)
        pf_remote, pf_upfront, manifest = measure_remote_warm(strategy, True)
        assert pf_remote.latency_ms < lazy_remote.latency_ms, (
            strategy.value,
            pf_remote.latency_ms,
            lazy_remote.latency_ms,
        )
        if strategy is TransferStrategy.RECORDED:
            # The acceptance property: upfront bytes are the measured
            # manifest, not a constant fraction of the diff.
            assert manifest is not None
            assert abs(pf_upfront - manifest.size_mb) < 1e-9, (
                pf_upfront,
                manifest.size_mb,
            )
            recorded_upfront_mb = pf_upfront
        result.add_row(
            f"remote:{strategy.value}",
            round(lazy_remote.latency_ms, 4),
            round(pf_remote.latency_ms, 4),
            round(lazy_remote.latency_ms - pf_remote.latency_ms, 4),
            round(lazy_upfront, 3),
            round(pf_upfront, 3),
            "-",
        )

    result.add_note(
        "prefetch nodes run with SeussConfig(prefetch_working_sets=True); "
        "lazy baselines use the default config every other table uses"
    )
    result.add_note(
        "recording invocations (first cold per node, first warm per "
        "function) are lazy-priced and excluded from the means"
    )
    if recorded_upfront_mb is not None:
        result.add_note(
            f"RECORDED ships the measured {recorded_upfront_mb:.2f} MB "
            "manifest upfront (vs. ON_DEMAND's constant 25% of the diff) "
            "and owes residual penalty only per its observed miss rate"
        )
    result.add_note(
        "remote upfront columns are MB on the wire before deployment "
        "may start"
    )
    result.raw["local"] = local
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="prefetch",
        title="Record-and-prefetch working sets (REAP) vs. lazy faults",
        entry=run_prefetch,
        profiles={
            "full": {},
            "quick": {"functions": 4},
            "smoke": {"functions": 1},
        },
        tags=("extension", "memory", "distributed"),
    )
)
