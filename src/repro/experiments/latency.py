"""§7 stage decomposition — where cold/warm/hot latency actually goes.

The paper reports end-to-end NOP latencies (7.5 / 3.5 / 0.8 ms) and
narrates the stages behind them; this experiment reconstructs the full
decomposition from recorded spans.  A :class:`~repro.trace.Tracer` is
attached to the node's environment, NOP invocations are driven down
each path, and every invocation's stage spans are checked to sum to its
end-to-end latency exactly (the coverage invariant) before the
per-path breakdown table is assembled.

When a tracer is already active process-wide (the CLI's ``--trace``
flag), the experiment records into it, so the exported Perfetto file
contains these invocations.
"""

from __future__ import annotations

from typing import Dict, List

from repro import trace
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.records import InvocationPath, NodeInvocation
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.trace.analysis import (
    COVERAGE_EPSILON,
    breakdown_rows,
    coverage_residual,
)
from repro.trace.tracer import Span, Tracer
from repro.workload.functions import nop_function

#: Paper end-to-end references for the NOP function (§7 / Table 1).
PAPER_END_TO_END_MS = {"cold": 7.5, "warm": 3.5, "hot": 0.8}

#: Path display order for the breakdown table.
PATH_ORDER = ("cold", "warm", "hot")


def trace_invocation_paths(
    invocations: int = 50,
) -> Dict[str, object]:
    """Drive traced NOP invocations down each path on one node.

    Returns the tracer, the per-path invocation outcomes, and the
    invocation root spans recorded during this run.  Reuses the active
    (``--trace``-installed) tracer when one is enabled so suite-level
    exports capture these spans; otherwise records into a private one.
    """
    active = trace.current()
    tracer = active if active.enabled else Tracer()
    env = Environment()
    tracer.attach(env)
    prior_roots = len(tracer.roots("invocation"))
    try:
        node = SeussNode(env, SeussConfig())
        node.initialize_sync()
        outcomes: Dict[str, List[NodeInvocation]] = {
            "cold": [], "warm": [], "hot": []
        }
        for index in range(invocations):
            fn = nop_function(owner=f"lat-{index}")
            cold = node.invoke_sync(fn)
            node.uc_cache.drop_function(fn.key)
            warm = node.invoke_sync(fn)
            hot = node.invoke_sync(fn)
            for label, outcome in (
                ("cold", cold), ("warm", warm), ("hot", hot)
            ):
                assert outcome.success, f"{label}: {outcome.error}"
                outcomes[label].append(outcome)
        expected = {
            "cold": InvocationPath.COLD,
            "warm": InvocationPath.WARM,
            "hot": InvocationPath.HOT,
        }
        for label, results in outcomes.items():
            for outcome in results:
                assert outcome.path is expected[label], (label, outcome.path)
    finally:
        tracer.detach(env)
    roots = tracer.roots("invocation")[prior_roots:]
    return {"tracer": tracer, "outcomes": outcomes, "roots": roots}


def check_coverage(tracer: Tracer, roots: List[Span]) -> float:
    """Assert every root's stages sum to its duration; returns the max
    absolute residual (the float-rounding headroom actually used)."""
    worst = 0.0
    for root in roots:
        residual = abs(coverage_residual(tracer, root))
        tolerance = COVERAGE_EPSILON * max(1.0, root.duration_ms)
        assert residual <= tolerance, (
            f"stage spans of {root.attrs.get('path')} invocation "
            f"cover {root.duration_ms - residual:.9f} of "
            f"{root.duration_ms:.9f} ms (residual {residual:.3e})"
        )
        worst = max(worst, residual)
    return worst


def run_latency(invocations: int = 200) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="latency",
        title="§7 stage decomposition of cold/warm/hot NOP latency",
        headers=["path", "stage", "mean_ms", "share_%"],
    )
    run = trace_invocation_paths(invocations)
    tracer: Tracer = run["tracer"]
    roots: List[Span] = run["roots"]
    assert len(roots) == 3 * invocations, len(roots)

    worst_residual = check_coverage(tracer, roots)
    for path, stage, mean_ms, share in breakdown_rows(
        tracer, roots, group_attr="path", group_order=PATH_ORDER
    ):
        result.add_row(path, stage, round(mean_ms, 4), round(share, 1))

    for path in PATH_ORDER:
        latencies = [s.latency_ms for s in run["outcomes"][path]]
        measured = sum(latencies) / len(latencies)
        result.add_note(
            f"{path} end-to-end: paper {PAPER_END_TO_END_MS[path]} ms, "
            f"measured {measured:.3f} ms"
        )
    result.add_note(
        f"coverage invariant held for all {len(roots)} invocations "
        f"(max |residual| {worst_residual:.3e} ms)"
    )
    result.add_note(
        f"stages averaged across {invocations} invocations per path"
    )
    result.raw["tracer"] = tracer
    result.raw["roots"] = roots
    result.raw["outcomes"] = run["outcomes"]
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="latency",
        title="§7 stage decomposition (traced invocation paths)",
        entry=run_latency,
        profiles={
            "full": {},
            "quick": {"invocations": 25},
            "smoke": {"invocations": 3},
        },
        tags=("paper", "table", "trace"),
    )
)
