"""Keep-alive policy race: cold-start rate vs memory footprint.

Not a paper table — the policy-lab extension on the ROADMAP.  SEUSS
hard-codes its cache discipline (LRU snapshots, LIFO idle UCs); the
schedulers that came after treat keep-alive as a tunable policy — the
Azure "Serverless in the Wild" scheduler derives per-function keep-alive
and pre-warm windows from idle-time histograms, FaasCache recasts
keep-alive as greedy-dual cache replacement.  This experiment replays
one production-shaped fleet trace (:mod:`repro.workload.fleet`: diurnal
rate envelope, Zipf popularity, periodic/bursty/Poisson per-function
arrival classes) through the keep-alive lab
(:mod:`repro.workload.keepalive`) once per (policy, memory budget) pair
and tables the cold-start-rate / memory-footprint trade-off each policy
buys — same trace, same budgets, only the policy changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.seuss.policy import POLICY_NAMES
from repro.workload.fleet import FleetTraceConfig, synthesize_fleet_trace
from repro.workload.keepalive import KeepAliveConfig, replay_keepalive


def run_keepalive(
    functions: int = 100_000,
    duration_ms: float = 3_600_000.0,
    budgets_mb: Sequence[float] = (8_192.0, 16_384.0, 32_768.0),
    cold_start_ms: float = 150.0,
    seed: int = 0x5EED5,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="keepalive",
        title="Keep-alive policy race: cold-start rate vs memory budget",
        headers=[
            "policy",
            "budget (MB)",
            "arrivals",
            "cold rate",
            "warm rate",
            "pre-warms",
            "pre-warm hits",
            "evictions",
            "expirations",
            "avg resident (MB)",
            "peak (MB)",
        ],
    )
    trace = synthesize_fleet_trace(
        FleetTraceConfig(
            functions=functions, duration_ms=duration_ms, seed=seed
        )
    )
    class_mix = ", ".join(
        f"{name}={count}"
        for name, count in sorted(trace.class_counts().items())
    )
    result.add_note(
        f"trace: {len(trace.times_ms)} arrivals over "
        f"{duration_ms / 60_000:.0f} min, {trace.distinct_functions()} of "
        f"{functions} functions active ({class_mix}), head-100 share "
        f"{trace.head_share(100):.3f}"
    )
    #: policy -> [(budget_mb, cold_rate)] for plots/tests.
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for budget in budgets_mb:
        cold_rates: Dict[str, float] = {}
        for policy in POLICY_NAMES:
            replay = replay_keepalive(
                trace,
                KeepAliveConfig(
                    policy=policy,
                    memory_budget_mb=float(budget),
                    cold_start_ms=cold_start_ms,
                ),
            )
            cold_rates[policy] = replay.cold_rate
            curves.setdefault(policy, []).append(
                (float(budget), replay.cold_rate)
            )
            result.add_row(
                policy,
                int(budget),
                replay.arrivals,
                round(replay.cold_rate, 4),
                round(replay.warm_rate, 4),
                replay.prewarms,
                replay.prewarm_hits,
                replay.evictions,
                replay.expirations,
                round(replay.avg_resident_mb, 1),
                round(replay.peak_resident_mb, 1),
            )
        best = min(cold_rates, key=lambda name: (cold_rates[name], name))
        lru = cold_rates["lru"]
        if best != "lru" and lru > 0:
            saved = (lru - cold_rates[best]) / lru
            result.add_note(
                f"at {int(budget)} MB, {best} cuts the cold-start rate "
                f"{saved:.1%} below the seed LRU discipline "
                f"({cold_rates[best]:.4f} vs {lru:.4f})"
            )
        else:
            result.add_note(
                f"at {int(budget)} MB, the seed LRU discipline is not "
                f"beaten (cold rate {lru:.4f})"
            )
    result.raw["curves"] = curves
    result.add_note(
        "same synthesized trace and bulk-injection replay for every row; "
        "only the policy and the memory budget change"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="keepalive",
        title="Keep-alive policy race: cold-start rate vs memory budget",
        entry=run_keepalive,
        profiles={
            "full": {},
            "quick": {
                "functions": 10_000,
                "duration_ms": 300_000.0,
                "budgets_mb": (2_048.0, 4_096.0),
            },
            "smoke": {
                "functions": 2_000,
                "duration_ms": 180_000.0,
                "budgets_mb": (1_024.0,),
            },
        },
        default_seed=0x5EED5,
        tags=("extension", "policy"),
    )
)
