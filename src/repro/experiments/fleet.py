"""Fleet-scale engine economics: events per invocation, by driver.

Not a paper table — an engineering experiment for the fleet-scale
directions on the ROADMAP (Azure-style trace replay over 100k-1M
functions, Lithops-style fan-out).  It runs the same pre-generated
Zipf fleet workload (:mod:`repro.workload.fleet`) through the legacy
per-arrival-process driver and the batched-injection driver and tables
the *deterministic* cost model: engine events consumed per invocation,
completions, and the simulated makespan.  Wall-clock throughput for the
same workload is measured by ``benchmarks/perf_gate.py``
(``million_event_fleet``) against ``benchmarks/fleet_heap_baseline.json``;
this table pins the part that must never drift: both drivers observe
identical arrivals, completions and clock, and batching halves the
engine events.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.sim import Environment
from repro.workload.fleet import DRIVERS, FleetConfig, generate


def run_fleet(arrivals: int = 100_000, seed: int = 0xF1EE7) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fleet",
        title="Fleet-scale engine events per invocation, by driver",
        headers=[
            "driver",
            "arrivals",
            "engine events",
            "events/arrival",
            "completions",
            "makespan (ms)",
            "head fn share",
        ],
    )
    workload = generate(FleetConfig(arrivals=arrivals, seed=seed))
    baseline = None
    for name, driver in DRIVERS.items():
        stats = driver(workload, Environment())
        if baseline is None:
            baseline = stats
        else:
            # Both drivers must observe the identical workload.
            assert stats.function_counts == baseline.function_counts
            assert stats.final_ms == baseline.final_ms
            assert stats.completions == baseline.completions
        result.add_row(
            name,
            stats.arrivals,
            stats.engine_events,
            round(stats.events_per_arrival, 3),
            stats.completions,
            round(stats.final_ms, 3),
            round(stats.head_share, 4),
        )
    result.add_note(
        "same seeded workload vectors for both drivers: identical "
        "per-function counts, completions and makespan — only the "
        "engine-event cost differs"
    )
    result.add_note(
        "wall-clock throughput for this workload is gated by "
        "benchmarks/perf_gate.py::million_event_fleet vs the committed "
        "heap-era reference in benchmarks/fleet_heap_baseline.json"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="fleet",
        title="Fleet-scale engine events per invocation, by driver",
        entry=run_fleet,
        profiles={
            "full": {},
            "quick": {"arrivals": 20_000},
            "smoke": {"arrivals": 4_000},
        },
        default_seed=0xF1EE7,
        tags=("extension", "engine"),
    )
)
