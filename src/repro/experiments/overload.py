"""Overload — goodput beyond capacity (extension beyond the paper).

SEUSS makes cold starts cheap enough to absorb bursts, but a burst that
*stays* above capacity is a different failure mode: with deadlines
attached and nothing else, clients give up while nodes keep burning
cores on answers nobody will read (zombies), and goodput collapses just
as offered load peaks.  This experiment sweeps offered load from 0.5x
to 3x of cluster capacity over open-loop (Poisson) arrivals and
contrasts two arms at every point:

* ``naive`` — deadlines are attached and tracked, nothing more: no
  cancellation, unbounded node queues, no admission control.
* ``ctrl`` — the full overload control plane from
  :mod:`repro.faas.overload`: expired work is cancelled between stages,
  per-node admission queues bound outstanding work and shed the
  overflow (deadline-aware drop-expired policy), queue depth steers the
  router toward the least-loaded node, and a cluster-wide token bucket
  bounds retries.

Goodput is completed-within-deadline requests per second of offered
window; wasted work is node core time burned on cancelled or zombie
invocations.  The acceptance criterion (locked by the ``-m overload``
test) is that at >= 2x offered load the controlled arm shows strictly
higher goodput *and* a strictly lower wasted-work fraction — shedding
early and killing expired work beats politely finishing it.

A chaos variant reruns the 2x point with the chaos experiment's fault
plan, retries and breakers installed, demonstrating that the retry
budget keeps correlated faults during overload from amplifying into a
retry storm.

Capacity is computed from the cost book, not measured: with ``cores``
single-core nodes running ``EXEC_MS`` CPU-bound functions, each core
completes one invocation per ``arg_import + exec + result_return``
milliseconds.  The function mix keeps the aggregate rate below the shim
connection's ~128 rps ceiling so overload piles up at node cores (the
resource the control plane manages), not in the shim queue.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional, Sequence

from repro.costs import DEFAULT_COSTS, CostBook
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.experiments.chaos import BASE_PLAN, CHAOS_BREAKER, CHAOS_RETRIES
from repro.faas.cluster import FaasCluster
from repro.faas.overload import OverloadConfig, ShedPolicy
from repro.faas.records import FunctionSpec, InvocationResult
from repro.metrics.collector import LatencyRecorder
from repro.metrics.resilience import ResilienceReport, goodput_per_sec
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import cpu_bound_function

#: CPU-bound body long enough that a core is a contended resource.
EXEC_MS = 50.0
#: Logically distinct functions in the mix (kept small so the working
#: set is warm after one pass and cold starts do not dominate).
FUNCTION_COUNT = 4
#: Two single-core nodes: small enough that the swept multiples stay
#: under the shim ceiling, plural so backpressure routing matters.
NODE_COUNT = 2
CORES_PER_NODE = 1
#: Client deadline; comfortably above the warm end-to-end latency
#: (~270 ms: control plane + shim + 50 ms exec) so it only bites when
#: queueing delay is the cause.
DEADLINE_MS = 500.0
#: Queued invocations each node may hold beyond its running set.
QUEUE_DEPTH = 4
#: Cluster-wide retry allowance (10% of admissions).
RETRY_BUDGET_FRACTION = 0.1

#: The naive arm: deadlines attached and tracked, nothing controlled.
NAIVE = OverloadConfig(deadline_ms=DEADLINE_MS)
#: The controlled arm: the full overload control plane.
CONTROLLED = OverloadConfig(
    deadline_ms=DEADLINE_MS,
    cancel_expired=True,
    queue_depth=QUEUE_DEPTH,
    shed_policy=ShedPolicy.DROP_EXPIRED,
    retry_budget_fraction=RETRY_BUDGET_FRACTION,
)

DEFAULT_MULTIPLES = (0.5, 1.0, 2.0, 3.0)
DEFAULT_DURATION_MS = 2000.0
#: The offered-load point the chaos variant and acceptance test use.
ACCEPTANCE_MULTIPLE = 2.0


def cluster_capacity_rps(costs: CostBook = DEFAULT_COSTS) -> float:
    """Ideal completions/s: every core busy, zero queueing."""
    service_ms = (
        costs.seuss.arg_import_ms + EXEC_MS + costs.seuss.result_return_ms
    )
    return NODE_COUNT * CORES_PER_NODE * 1000.0 / service_ms


def _overload_functions() -> List[FunctionSpec]:
    return [
        cpu_bound_function(f"overload-{index}", owner="overload", exec_ms=EXEC_MS)
        for index in range(FUNCTION_COUNT)
    ]


def _client(
    cluster: FaasCluster,
    fn: FunctionSpec,
    recorder: LatencyRecorder,
) -> Generator:
    result = yield cluster.invoke(fn)
    recorder.add(result)


def _open_loop(
    cluster: FaasCluster,
    functions: Sequence[FunctionSpec],
    rate_per_s: float,
    duration_ms: float,
    recorder: LatencyRecorder,
    seed: int,
) -> Generator:
    """Poisson arrivals for ``duration_ms``, then drain the clients."""
    env = cluster.env
    rng = random.Random(seed)
    clients = []
    window_end = env.now + duration_ms
    while True:
        fn = functions[rng.randrange(len(functions))]
        clients.append(env.process(_client(cluster, fn, recorder)))
        gap_ms = rng.expovariate(rate_per_s) * 1000.0
        if env.now + gap_ms >= window_end:
            break
        yield env.timeout(gap_ms)
    yield env.all_of(clients)


def run_overload_trial(
    multiple: float,
    duration_ms: float = DEFAULT_DURATION_MS,
    controlled: bool = False,
    chaos: bool = False,
    seed: int = 0x10AD,
) -> "tuple[LatencyRecorder, ResilienceReport, float]":
    """One open-loop trial at ``multiple`` x capacity.

    Returns the recorder of client-visible results for the measured
    window, the cluster's resilience report (shed / cancelled / zombie
    / wasted-work counters), and the elapsed milliseconds from the
    first arrival until the last client finished (the goodput
    denominator — it includes the drain, so goodput can never exceed
    what the cores physically completed per second).
    """
    env = Environment()
    config = SeussConfig(cores=CORES_PER_NODE)
    extras = {}
    if chaos:
        extras = dict(
            faults=BASE_PLAN,
            retries=CHAOS_RETRIES,
            breaker=CHAOS_BREAKER,
        )
    cluster = FaasCluster.with_seuss_node(
        env,
        config=config,
        overload=CONTROLLED if controlled else NAIVE,
        **extras,
    )
    for _ in range(NODE_COUNT - 1):
        node = SeussNode(env, config=config, costs=cluster.costs)
        node.initialize_sync()
        cluster.add_node(node)
    functions = _overload_functions()
    # Warmup (unrecorded): one sequential pass so snapshots exist and
    # the measured window contends on cores, not on first-touch colds.
    for fn in functions:
        env.run(until=cluster.invoke(fn))
    rate_per_s = multiple * cluster_capacity_rps(cluster.costs)
    recorder = LatencyRecorder()
    started_ms = env.now
    process = env.process(
        _open_loop(cluster, functions, rate_per_s, duration_ms, recorder, seed)
    )
    env.run(until=process)
    elapsed_ms = env.now - started_ms
    return recorder, ResilienceReport.from_cluster(cluster), elapsed_ms


def run_overload(
    multiples: Sequence[float] = DEFAULT_MULTIPLES,
    duration_ms: float = DEFAULT_DURATION_MS,
    chaos: bool = True,
    seed: int = 0x10AD,
) -> ExperimentResult:
    capacity = cluster_capacity_rps()
    result = ExperimentResult(
        experiment_id="overload",
        title="Goodput under overload (naive vs controlled)",
        headers=[
            "offered",
            "arm",
            "goodput/s",
            "% capacity",
            "p99 ms",
            "shed",
            "cancelled",
            "zombies",
            "wasted %",
        ],
    )
    reports = {}
    recorders = {}
    aggregates = {}

    def add_row(label, arm, recorder, report, elapsed_ms):
        goodput = goodput_per_sec(recorder.results, elapsed_ms)
        summary = recorder.summary()
        result.add_row(
            label,
            arm,
            round(goodput, 2),
            round(goodput * 100.0 / capacity, 1),
            round(summary.p99, 2),
            report.shed,
            report.cancelled,
            report.zombies,
            round(report.wasted_work_fraction * 100.0, 1),
        )
        key = f"{label} {arm}"
        reports[key] = report
        recorders[key] = recorder
        aggregates[key] = {
            "goodput_per_sec": goodput,
            "wasted_work_fraction": report.wasted_work_fraction,
            "elapsed_ms": elapsed_ms,
        }

    for multiple in multiples:
        label = f"{multiple:.1f}x"
        for arm, controlled in (("naive", False), ("ctrl", True)):
            recorder, report, elapsed_ms = run_overload_trial(
                multiple, duration_ms, controlled=controlled, seed=seed
            )
            add_row(label, arm, recorder, report, elapsed_ms)

    if chaos:
        label = f"{ACCEPTANCE_MULTIPLE:.1f}x+chaos"
        for arm, controlled in (("naive", False), ("ctrl", True)):
            recorder, report, elapsed_ms = run_overload_trial(
                ACCEPTANCE_MULTIPLE,
                duration_ms,
                controlled=controlled,
                chaos=True,
                seed=seed,
            )
            add_row(label, arm, recorder, report, elapsed_ms)

    result.raw["reports"] = reports
    result.raw["aggregates"] = aggregates
    result.add_note(
        f"open-loop Poisson arrivals for {duration_ms:.0f} ms against "
        f"{NODE_COUNT} single-core SEUSS nodes; capacity = "
        f"{capacity:.1f} req/s from the cost book "
        f"({EXEC_MS:.0f} ms CPU-bound bodies)"
    )
    result.add_note(
        f"both arms attach a {DEADLINE_MS:.0f} ms client deadline; "
        "'naive' only tracks it (node work runs to completion as a "
        "zombie), 'ctrl' adds cancellation, bounded admission queues "
        f"(depth {QUEUE_DEPTH}, {CONTROLLED.shed_policy.value}), "
        "backpressure routing and a "
        f"{RETRY_BUDGET_FRACTION:.0%} retry budget"
    )
    result.add_note(
        "goodput = requests completed within deadline per second of "
        "elapsed trial time (arrival window + drain); wasted % = node "
        "core-ms burned on cancelled or zombie work over all core-ms "
        "spent"
    )
    if chaos:
        result.add_note(
            "chaos rows rerun the 2.0x point with the chaos fault plan, "
            "retries and breakers installed — the retry budget keeps "
            "fault-triggered retries from amplifying the overload"
        )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="overload",
        title="Goodput under overload (naive vs controlled)",
        entry=run_overload,
        profiles={
            "full": {},
            "quick": {
                "multiples": (0.5, 2.0),
                "duration_ms": 1200.0,
                "chaos": False,
            },
            "smoke": {
                "multiples": (2.0,),
                "duration_ms": 400.0,
                "chaos": False,
            },
        },
        default_seed=0x10AD,
        tags=("extension", "overload", "slow"),
    )
)
