"""Parallel suite executor for registered experiment specs.

Experiments are independent simulations (each builds its own
:class:`~repro.sim.Environment` and seeds its own RNGs), so a suite is
embarrassingly parallel across *processes*.  :func:`run_suite` executes
a selection of registered specs either serially in-process or across a
:class:`~concurrent.futures.ProcessPoolExecutor`, with:

* per-experiment deterministic seeds (derived from the suite seed and
  the experiment id, so adding/removing experiments never reshuffles
  another experiment's seed);
* per-experiment wall-clock timing and failure capture — a crashing
  experiment becomes a reported :class:`ExperimentOutcome`, it does not
  kill the run;
* structured ``[suite] ...`` progress lines via the ``progress``
  callback;
* in-order result streaming via the ``on_outcome`` callback, so a
  parallel run prints tables in exactly the serial order (the
  byte-identical guarantee the CLI relies on).

Workers return only picklable payloads (rendered text + the JSON table
dict), never ``ExperimentResult`` objects, whose ``raw`` attachments
hold live simulation state.
"""

from __future__ import annotations

import os
import time
import traceback
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.base import (
    ExperimentRegistry,
    ExperimentResult,
    ExperimentSpec,
)
from repro.metrics.export import experiment_to_dict

ProgressFn = Callable[[str], None]


def derive_seed(suite_seed: int, experiment_id: str) -> int:
    """Deterministic per-experiment seed from one suite-level seed."""
    digest = zlib.crc32(f"{suite_seed}:{experiment_id}".encode("utf-8"))
    return digest & 0x7FFFFFFF


@dataclass
class ExperimentOutcome:
    """What one experiment produced (or how it failed)."""

    experiment_id: str
    profile: str
    seed: Optional[int]
    ok: bool
    duration_s: float
    text: Optional[str] = None
    table: Optional[dict] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: The live result object; only populated on serial in-process runs.
    result: Optional[ExperimentResult] = None


@dataclass
class SuiteResult:
    """One suite run: ordered outcomes plus run-level accounting."""

    profile: str
    parallel: int
    seed: Optional[int]
    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    wall_clock_s: float = 0.0
    #: How the run actually executed: ``in-process`` (serial, including
    #: runs where the requested width clamped to 1) or ``process-pool``.
    executor: str = "in-process"
    #: Worker count after clamping to the spec count and the host's
    #: cores — the width that actually ran, vs the requested
    #: :attr:`parallel`.
    effective_workers: int = 1
    #: Whether a process-global tracer was active for this run, and
    #: where its Perfetto export was written (the CLI's ``--trace``).
    trace_enabled: bool = False
    trace_path: Optional[str] = None

    @property
    def failed(self) -> List[ExperimentOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def to_dict(self) -> dict:
        """Schema-versioned JSON payload (see metrics/export.py)."""
        from repro.metrics.export import SCHEMA_VERSION

        experiments = []
        for outcome in self.outcomes:
            entry = dict(outcome.table or {"experiment_id": outcome.experiment_id})
            entry.update(
                {
                    "status": "ok" if outcome.ok else "error",
                    "profile": outcome.profile,
                    "seed": outcome.seed,
                    "duration_s": round(outcome.duration_s, 3),
                }
            )
            if outcome.error is not None:
                entry["error"] = outcome.error
                entry["error_type"] = outcome.error_type
            experiments.append(entry)
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "seuss-repro-suite",
            "profile": self.profile,
            "parallel": self.parallel,
            "executor": self.executor,
            "effective_workers": self.effective_workers,
            "seed": self.seed,
            "wall_clock_s": round(self.wall_clock_s, 3),
            "trace": {
                "enabled": self.trace_enabled,
                "path": self.trace_path,
            },
            "experiments": experiments,
        }


def _execute(
    spec: ExperimentSpec, profile: str, seed: Optional[int], keep_result: bool
) -> ExperimentOutcome:
    """Run one spec, capturing failure instead of propagating it."""
    resolved, _ = spec.resolve_profile(profile)
    started = time.perf_counter()
    try:
        result = spec.run(profile=profile, seed=seed)
    except Exception:
        return ExperimentOutcome(
            experiment_id=spec.experiment_id,
            profile=resolved,
            seed=seed,
            ok=False,
            duration_s=time.perf_counter() - started,
            error=traceback.format_exc(),
            error_type=traceback.format_exc().strip().splitlines()[-1],
        )
    return ExperimentOutcome(
        experiment_id=spec.experiment_id,
        profile=resolved,
        seed=seed,
        ok=True,
        duration_s=time.perf_counter() - started,
        text=result.to_text(),
        table=experiment_to_dict(result),
        result=result if keep_result else None,
    )


def _worker(experiment_id: str, profile: str, seed: Optional[int]) -> ExperimentOutcome:
    """Subprocess entry point: resolve the spec from a fresh registry.

    Importing (rather than pickling) the spec keeps workers correct
    under both fork and spawn start methods.
    """
    from repro.experiments import load_all

    spec = load_all().get(experiment_id)
    return _execute(spec, profile, seed, keep_result=False)


def seed_for(spec: ExperimentSpec, suite_seed: Optional[int]) -> Optional[int]:
    """The seed this suite run passes to ``spec`` (None = don't pass)."""
    if not spec.accepts_seed():
        return None
    if suite_seed is None:
        return spec.default_seed
    return derive_seed(suite_seed, spec.experiment_id)


def run_suite(
    experiment_ids: Sequence[str],
    profile: str = "full",
    parallel: int = 1,
    seed: Optional[int] = None,
    registry: Optional[ExperimentRegistry] = None,
    progress: Optional[ProgressFn] = None,
    on_outcome: Optional[Callable[[ExperimentOutcome], None]] = None,
    keep_results: bool = True,
) -> SuiteResult:
    """Run ``experiment_ids`` at ``profile`` scale, ``parallel`` wide.

    Outcomes are returned — and streamed to ``on_outcome`` — in the
    order the ids were given, regardless of completion order, so serial
    and parallel runs emit identical table sequences.

    The requested width is clamped to the spec count *and* the host's
    core count: a process pool that cannot actually run two workers
    only adds spawn/pickle overhead, so on a single-core host the suite
    always executes in-process.  :attr:`SuiteResult.executor` records
    which path ran.

    ``keep_results=False`` drops the live
    :class:`~repro.experiments.base.ExperimentResult` objects from
    serial outcomes (parallel workers never return them).  Callers that
    only consume the rendered text/tables — benchmarking in particular
    — should pass ``False``: retaining 20 experiments' simulation
    graphs measurably slows everything that allocates afterwards (the
    collector re-traces them on every generational pass).
    """
    if registry is None:
        from repro.experiments import load_all

        registry = load_all()
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    specs = [registry.get(experiment_id) for experiment_id in experiment_ids]
    seeds = {spec.experiment_id: seed_for(spec, seed) for spec in specs}
    emit = progress or (lambda line: None)
    deliver = on_outcome or (lambda outcome: None)

    started = time.perf_counter()
    outcomes: List[ExperimentOutcome] = []

    def announce(spec: ExperimentSpec) -> None:
        resolved, _ = spec.resolve_profile(profile)
        spec_seed = seeds[spec.experiment_id]
        seed_note = f", seed={spec_seed}" if spec_seed is not None else ""
        emit(
            f"[suite] start {spec.experiment_id} "
            f"(profile={resolved}{seed_note})"
        )

    def report(outcome: ExperimentOutcome) -> None:
        if outcome.ok:
            emit(
                f"[suite] done {outcome.experiment_id} "
                f"in {outcome.duration_s:.1f}s"
            )
        else:
            emit(
                f"[suite] FAILED {outcome.experiment_id} "
                f"after {outcome.duration_s:.1f}s: {outcome.error_type}"
            )

    effective = min(parallel, max(len(specs), 1), os.cpu_count() or 1)
    if effective <= 1:
        executor = "in-process"
        for spec in specs:
            announce(spec)
            outcome = _execute(
                spec, profile, seeds[spec.experiment_id],
                keep_result=keep_results,
            )
            report(outcome)
            outcomes.append(outcome)
            deliver(outcome)
    else:
        executor = "process-pool"
        outcomes = _run_parallel(
            specs, profile, seeds, effective, announce, report, deliver
        )

    return SuiteResult(
        profile=profile,
        parallel=parallel,
        seed=seed,
        outcomes=outcomes,
        wall_clock_s=time.perf_counter() - started,
        executor=executor,
        effective_workers=effective,
    )


def _run_parallel(
    specs: Sequence[ExperimentSpec],
    profile: str,
    seeds: Dict[str, Optional[int]],
    parallel: int,
    announce: Callable[[ExperimentSpec], None],
    report: Callable[[ExperimentOutcome], None],
    deliver: Callable[[ExperimentOutcome], None],
) -> List[ExperimentOutcome]:
    """Fan the specs across worker processes; stream results in order."""
    slots: List[Optional[ExperimentOutcome]] = [None] * len(specs)
    delivered = 0
    with ProcessPoolExecutor(max_workers=min(parallel, len(specs))) as pool:
        futures = {}
        for index, spec in enumerate(specs):
            announce(spec)
            future = pool.submit(
                _worker, spec.experiment_id, profile, seeds[spec.experiment_id]
            )
            futures[future] = index
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                spec = specs[index]
                try:
                    outcome = future.result()
                except Exception:  # worker died (e.g. BrokenProcessPool)
                    outcome = ExperimentOutcome(
                        experiment_id=spec.experiment_id,
                        profile=spec.resolve_profile(profile)[0],
                        seed=seeds[spec.experiment_id],
                        ok=False,
                        duration_s=0.0,
                        error=traceback.format_exc(),
                        error_type=traceback.format_exc()
                        .strip()
                        .splitlines()[-1],
                    )
                report(outcome)
                slots[index] = outcome
            while delivered < len(slots) and slots[delivered] is not None:
                deliver(slots[delivered])
                delivered += 1
    return [outcome for outcome in slots if outcome is not None]
