"""CLI: regenerate every table and figure.

Usage::

    seuss-repro all                      # everything, full scale
    seuss-repro table1 table3            # selected experiments
    seuss-repro all --quick              # reduced scale (CI-sized)
    seuss-repro all --quick --parallel 4 # same tables, 4 worker procs
    seuss-repro --list                   # registered specs + profiles
    seuss-repro all --profile smoke      # smallest scale of everything

Experiments are resolved through the declarative spec registry
(:mod:`repro.experiments.base`) and executed by the suite executor
(:mod:`repro.experiments.suite`); a parallel run prints byte-identical
experiment tables to a serial run of the same selection.  Progress
lines go to stderr; tables and per-experiment completion lines go to
stdout.  Each experiment prints a paper-vs-measured table;
EXPERIMENTS.md is the curated record of a full run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import load_all
from repro.experiments.base import (
    ExperimentRegistry,
    ExperimentSpec,
    KNOWN_PROFILES,
)
from repro.experiments.suite import ExperimentOutcome, run_suite
from repro.metrics.reporter import format_table


def _spec_listing(registry: ExperimentRegistry) -> str:
    """The ``--list`` table: one row per registered spec."""
    rows = []
    for spec in registry.specs():
        rows.append(
            [
                spec.experiment_id,
                spec.title,
                "/".join(spec.profile_names),
                hex(spec.default_seed) if spec.default_seed is not None else "-",
                ",".join(spec.tags) or "-",
            ]
        )
    return format_table(
        ["experiment", "title", "profiles", "seed", "tags"], rows
    )


def _print_outcome(outcome: ExperimentOutcome, plot: bool) -> None:
    """Emit one experiment's stdout block (table, plots, timing)."""
    if outcome.ok:
        print(outcome.text)
        if plot and outcome.result is not None and "runs" in outcome.result.raw:
            from repro.metrics.ascii_plot import burst_figure

            for backend, run in outcome.result.raw["runs"].items():
                print()
                print(
                    burst_figure(
                        run, title=f"{outcome.result.title} — {backend}"
                    )
                )
        print(f"[{outcome.experiment_id} completed in {outcome.duration_s:.1f}s]")
    else:
        print(outcome.error, file=sys.stderr)
        print(
            f"[{outcome.experiment_id} FAILED after {outcome.duration_s:.1f}s]"
        )
    print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="seuss-repro",
        description="Reproduce the tables and figures of SEUSS (EuroSys'20)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (table1..table3, figure4..figure8, ...) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --profile quick (seconds, not minutes)",
    )
    parser.add_argument(
        "--profile",
        choices=list(KNOWN_PROFILES),
        default=None,
        help="scale profile; specs without the profile fall back to the "
        "next larger one (smoke -> quick -> full)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments concurrently in worker processes "
        "(tables still print in selection order, byte-identical to a "
        "serial run)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="suite seed; each experiment derives its own deterministic "
        "seed from it (default: every experiment's registered seed)",
    )
    parser.add_argument(
        "--tag",
        action="append",
        default=None,
        metavar="TAG",
        help="keep only experiments carrying TAG (repeatable, AND)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the registered experiment specs and exit",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render the burst figures (6-8) as ASCII scatter plots "
        "(serial runs only)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the suite artifact (tables + run metadata) to "
        "FILE as schema-versioned JSON",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record sim-clock spans for the whole run and write them to "
        "FILE as Chrome trace-event JSON (open in Perfetto; serial runs "
        "only)",
    )
    args = parser.parse_args(argv)

    registry = load_all()
    if args.list:
        print(_spec_listing(registry))
        return 0

    if args.quick and args.profile not in (None, "quick"):
        parser.error("--quick conflicts with --profile " + args.profile)
    profile = args.profile or ("quick" if args.quick else "full")
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")
    if args.plot and args.parallel > 1:
        parser.error("--plot needs the in-process results of a serial run; "
                     "drop --parallel")
    if args.trace and args.parallel > 1:
        parser.error("--trace records in-process spans, which worker "
                     "processes cannot share; drop --parallel")

    wanted = args.experiments or ["all"]
    known = set(registry.ids())
    unknown = [
        name for name in wanted if name != "all" and name not in known
    ]
    if unknown:
        parser.error(
            f"unknown experiments: {unknown}; known: {sorted(known)}"
        )
    specs: List[ExperimentSpec] = registry.select(wanted, tags=args.tag)
    if not specs:
        parser.error("selection matched no experiments")

    tracer = None
    if args.trace:
        from repro import trace

        tracer = trace.enable(trace.Tracer())
    try:
        suite = run_suite(
            [spec.experiment_id for spec in specs],
            profile=profile,
            parallel=args.parallel,
            seed=args.seed,
            registry=registry,
            progress=lambda line: print(line, file=sys.stderr),
            on_outcome=lambda outcome: _print_outcome(outcome, args.plot),
        )
    finally:
        if tracer is not None:
            from repro.trace import disable

            disable()

    if tracer is not None:
        from repro.trace.export import write_chrome_trace

        suite.trace_enabled = True
        suite.trace_path = args.trace
        events = write_chrome_trace(args.trace, tracer)
        print(
            f"wrote {events} trace events ({len(tracer.spans)} spans) "
            f"to {args.trace}"
        )
    if args.json:
        from repro.metrics.export import write_suite_json

        write_suite_json(args.json, suite)
        print(
            f"wrote {len(suite.outcomes)} experiment tables to {args.json}"
        )
    if suite.failed:
        failed = ", ".join(outcome.experiment_id for outcome in suite.failed)
        print(
            f"[suite] {len(suite.failed)}/{len(suite.outcomes)} experiments "
            f"failed: {failed}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
