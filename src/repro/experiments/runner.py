"""CLI: regenerate every table and figure.

Usage::

    seuss-repro all            # everything, full scale
    seuss-repro table1 table3  # selected experiments
    seuss-repro all --quick    # reduced scale (CI-sized)

Each experiment prints a paper-vs-measured table; EXPERIMENTS.md is the
curated record of a full run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.experiments.base import ExperimentResult, registry
from repro.experiments.bursts import run_figure6, run_figure7, run_figure8
from repro.experiments.chaos import run_chaos
from repro.experiments.extensions import (
    run_ablations,
    run_autoao,
    run_distributed,
    run_ksm_contrast,
)
from repro.experiments.codesize import run_codesize
from repro.experiments.figure4 import run_figure4
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


def _full() -> Dict[str, Callable[[], ExperimentResult]]:
    return {
        "table1": lambda: run_table1(),
        "table2": lambda: run_table2(),
        "table3": lambda: run_table3(),
        "figure4": lambda: run_figure4(),
        "figure5": lambda: run_figure5(),
        "figure6": lambda: run_figure6(),
        "figure7": lambda: run_figure7(),
        "figure8": lambda: run_figure8(),
        # Extensions beyond the paper's evaluation.
        "ablations": run_ablations,
        "distributed": run_distributed,
        "ksm": lambda: run_ksm_contrast(),
        "autoao": lambda: run_autoao(),
        "sensitivity": lambda: run_sensitivity(),
        "codesize": lambda: run_codesize(),
        "chaos": lambda: run_chaos(),
    }


def _quick() -> Dict[str, Callable[[], ExperimentResult]]:
    return {
        "table1": lambda: run_table1(invocations=50),
        "table2": lambda: run_table2(invocations=10),
        "table3": lambda: run_table3(
            density_limit=6000,
            rate_targets={
                "microvm": 64,
                "container": 400,
                "process": 1000,
                "seuss_uc": 4000,
            },
        ),
        "figure4": lambda: run_figure4(
            set_sizes=(64, 1024, 65536), invocations=1500
        ),
        "figure5": lambda: run_figure5(invocations=1500),
        "figure6": lambda: run_figure6(burst_count=6),
        "figure7": lambda: run_figure7(burst_count=8),
        "figure8": lambda: run_figure8(burst_count=10),
        "ablations": run_ablations,
        "distributed": run_distributed,
        "ksm": lambda: run_ksm_contrast(containers=60),
        "autoao": lambda: run_autoao(samples=3),
        "sensitivity": lambda: run_sensitivity(scales=(1.0, 2.0)),
        "codesize": lambda: run_codesize(code_sizes_kb=(0.1, 100.0)),
        "chaos": lambda: run_chaos(scales=(0.0, 1.0), invocations=300),
    }


registry.update(_full())


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="seuss-repro",
        description="Reproduce the tables and figures of SEUSS (EuroSys'20)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (table1..table3, figure4..figure8) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced-scale run (seconds, not minutes)"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render the burst figures (6-8) as ASCII scatter plots",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the experiment tables to FILE as JSON",
    )
    args = parser.parse_args(argv)

    suite = _quick() if args.quick else _full()
    wanted = args.experiments
    if not wanted or "all" in wanted:
        wanted = list(suite)
    unknown = [name for name in wanted if name not in suite]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(suite)}")

    completed: List[ExperimentResult] = []
    for name in wanted:
        started = time.time()
        result = suite[name]()
        completed.append(result)
        print(result.to_text())
        if args.plot and "runs" in result.raw:
            from repro.metrics.ascii_plot import burst_figure

            for backend, run in result.raw["runs"].items():
                print()
                print(burst_figure(run, title=f"{result.title} — {backend}"))
        print(f"[{name} completed in {time.time() - started:.1f}s]")
        print()
    if args.json:
        from repro.metrics.export import write_experiments_json

        write_experiments_json(args.json, completed)
        print(f"wrote {len(completed)} experiment tables to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
