"""Table 1 — SEUSS microbenchmarks.

Top half: memory footprint of the Node.js runtime snapshot and the NOP
function snapshot, before and after anticipatory optimization.
Bottom half: invocation latency and memory activity of the NOP
JavaScript function on the cold, warm and hot paths, averaged over many
invocations (the paper uses 475).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.records import InvocationPath, NodeInvocation
from repro.metrics.stats import mean
from repro.seuss.config import AOLevel, SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import nop_function

#: Paper reference values (MB / ms).
PAPER_BASE_SNAPSHOT_MB = 109.6
PAPER_BASE_SNAPSHOT_AFTER_AO_MB = 114.5
PAPER_FN_SNAPSHOT_MB = 4.8
PAPER_FN_SNAPSHOT_AFTER_AO_MB = 2.0
PAPER_LATENCY_MS = {"cold": 7.5, "warm": 3.5, "hot": 0.8}


def _fresh_node(ao_level: AOLevel) -> SeussNode:
    node = SeussNode(Environment(), SeussConfig(ao_level=ao_level))
    node.initialize_sync()
    return node


def _snapshot_sizes(ao_level: AOLevel) -> Dict[str, float]:
    """Measure base and NOP-function snapshot sizes at one AO level."""
    node = _fresh_node(ao_level)
    base = node.runtime_record("nodejs").snapshot
    result = node.invoke_sync(nop_function())
    assert result.success, result.error
    fn_snapshot = node.snapshot_cache.get(nop_function().key)
    assert fn_snapshot is not None
    return {"base_mb": base.size_mb, "fn_mb": fn_snapshot.size_mb}


def measure_invocation_paths(
    invocations: int = 475, ao_level: AOLevel = AOLevel.NETWORK_AND_INTERPRETER
) -> Dict[str, List[NodeInvocation]]:
    """Drive ``invocations`` NOPs down each path on one node.

    Cold invocations use distinct functions (each is a true miss); warm
    re-invokes after the idle UC is dropped (snapshot hit, no idle UC);
    hot re-invokes with the idle UC in place.
    """
    node = _fresh_node(ao_level)
    samples: Dict[str, List[NodeInvocation]] = {"cold": [], "warm": [], "hot": []}
    for index in range(invocations):
        fn = nop_function(owner=f"t1-{index}")
        cold = node.invoke_sync(fn)
        node.uc_cache.drop_function(fn.key)
        warm = node.invoke_sync(fn)
        hot = node.invoke_sync(fn)
        for label, outcome in (("cold", cold), ("warm", warm), ("hot", hot)):
            assert outcome.success, f"{label}: {outcome.error}"
            samples[label].append(outcome)
    expected = {
        "cold": InvocationPath.COLD,
        "warm": InvocationPath.WARM,
        "hot": InvocationPath.HOT,
    }
    for label, outcomes in samples.items():
        for outcome in outcomes:
            assert outcome.path is expected[label], (label, outcome.path)
    return samples


def run_table1(invocations: int = 475) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="SEUSS microbenchmarks (NOP JavaScript function)",
        headers=["quantity", "paper", "measured"],
    )

    before = _snapshot_sizes(AOLevel.NONE)
    after = _snapshot_sizes(AOLevel.NETWORK_AND_INTERPRETER)
    result.add_row(
        "Node.js runtime snapshot (MB)", PAPER_BASE_SNAPSHOT_MB, before["base_mb"]
    )
    result.add_row(
        "Node.js runtime snapshot after AO (MB)",
        PAPER_BASE_SNAPSHOT_AFTER_AO_MB,
        after["base_mb"],
    )
    result.add_row(
        "NOP function snapshot (MB)", PAPER_FN_SNAPSHOT_MB, before["fn_mb"]
    )
    result.add_row(
        "NOP function snapshot after AO (MB)",
        PAPER_FN_SNAPSHOT_AFTER_AO_MB,
        after["fn_mb"],
    )

    samples = measure_invocation_paths(invocations)
    for label in ("cold", "warm", "hot"):
        latencies = [s.latency_ms for s in samples[label]]
        result.add_row(
            f"{label} start latency (ms)",
            PAPER_LATENCY_MS[label],
            mean(latencies),
        )
    for label in ("cold", "warm", "hot"):
        copied = [s.pages_copied for s in samples[label]]
        result.add_row(
            f"{label} start pages copied", "-", mean(copied)
        )
    result.add_note(
        f"latencies averaged across {invocations} invocations per path"
    )
    result.add_note(
        "pages-copied column: the paper's per-path memory-footprint "
        "numbers are unreadable in the source text; measured COW page "
        "copies are reported"
    )
    result.raw["samples"] = samples
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="table1",
        title="SEUSS microbenchmarks (snapshot sizes, path latencies)",
        entry=run_table1,
        profiles={
            "full": {},
            "quick": {"invocations": 50},
            "smoke": {"invocations": 5},
        },
        tags=("paper", "table"),
    )
)
