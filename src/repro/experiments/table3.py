"""Table 3 — cache density and parallel creation rate.

For each isolation method (Firecracker microVM, Docker container, Linux
process, SEUSS UC) on an 88 GB / 16-VCPU node:

* **Cache density** — deploy idle Node.js environments sequentially
  until physical memory saturates.
* **Creation rate** — deploy from 16 parallel workers and measure the
  aggregate instances-per-second.  The SEUSS path goes through the shim
  process, whose single TCP connection is the rate limiter the paper
  identifies (128.6/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.errors import OutOfMemoryError
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.linuxnode.instances import InstanceKind
from repro.linuxnode.node import LinuxNode
from repro.seuss.node import SeussNode
from repro.seuss.shim import ShimProcess
from repro.sim import Environment

#: Paper reference values (Table 3).
PAPER = {
    "microvm": {"rate": 1.3, "density": 450},
    "container": {"rate": 5.3, "density": 3000},
    "process": {"rate": 45.0, "density": 4200},
    "seuss_uc": {"rate": 128.6, "density": 54000},
}

#: Display order and labels.
METHODS = (
    ("microvm", "Firecracker microVM"),
    ("container", "Docker w/ overlay2 fs"),
    ("process", "Linux process"),
    ("seuss_uc", "SEUSS UC"),
)

PARALLEL_WORKERS = 16


@dataclass
class MethodMeasurement:
    method: str
    density: int
    creation_rate_per_s: float
    per_instance_mb: float


# -- density -----------------------------------------------------------------


def measure_density(method: str, limit: Optional[int] = None) -> MethodMeasurement:
    """Deploy idle instances until memory saturates (or ``limit``)."""
    cap = limit if limit is not None else 10**9
    env = Environment()
    if method == "seuss_uc":
        node = SeussNode(env)
        node.initialize_sync()
        deployed = []
        before = node.allocator.allocated_pages
        while len(deployed) < cap:
            try:
                uc = env.run(until=env.process(node.deploy_idle_instance()))
            except OutOfMemoryError:
                break
            deployed.append(uc)
        used = node.allocator.allocated_pages - before
    else:
        kind = InstanceKind(method)
        node = LinuxNode(env)
        deployed = []
        before = node.allocator.allocated_pages
        while len(deployed) < cap:
            try:
                instance = env.run(until=env.process(node.deploy_instance(kind)))
            except OutOfMemoryError:
                break
            deployed.append(instance)
        used = node.allocator.allocated_pages - before
    count = len(deployed)
    per_instance_mb = (used / 256.0 / count) if count else 0.0
    return MethodMeasurement(
        method=method,
        density=count,
        creation_rate_per_s=0.0,
        per_instance_mb=per_instance_mb,
    )


# -- parallel creation rate ------------------------------------------------


def measure_creation_rate(method: str, target: int) -> float:
    """Create ``target`` instances from 16 parallel workers; rate/s."""
    env = Environment()
    state = {"remaining": target}

    if method == "seuss_uc":
        node = SeussNode(env)
        node.initialize_sync()
        shim = ShimProcess(env, node.costs.platform)

        def worker() -> Generator:
            while state["remaining"] > 0:
                state["remaining"] -= 1
                yield from shim.forward()
                yield from node.deploy_idle_instance()

    else:
        kind = InstanceKind(method)
        node = LinuxNode(env)

        def worker() -> Generator:
            while state["remaining"] > 0:
                state["remaining"] -= 1
                yield from node.deploy_instance(kind)

    started = env.now
    workers = [env.process(worker()) for _ in range(PARALLEL_WORKERS)]
    env.run(until=env.all_of(workers))
    elapsed_s = (env.now - started) / 1000.0
    return target / elapsed_s if elapsed_s > 0 else 0.0


# -- the full table -----------------------------------------------------------


def run_table3(
    density_limit: Optional[int] = None,
    rate_targets: Optional[Dict[str, int]] = None,
) -> ExperimentResult:
    """Reproduce Table 3.

    ``density_limit`` caps the density sweep (for quick runs);
    ``rate_targets`` overrides how many instances the rate test creates
    per method (defaults to the measured density, as in the paper).
    """
    result = ExperimentResult(
        experiment_id="table3",
        title="Cache density limit and parallel (16-way) creation rate",
        headers=[
            "isolation method",
            "paper rate (/s)",
            "measured rate (/s)",
            "paper density",
            "measured density",
            "per-instance MB",
        ],
    )
    measurements: Dict[str, MethodMeasurement] = {}
    for method, label in METHODS:
        density = measure_density(method, limit=density_limit)
        target = (rate_targets or {}).get(method) or density.density
        rate = measure_creation_rate(method, target)
        density.creation_rate_per_s = rate
        measurements[method] = density
        result.add_row(
            label,
            PAPER[method]["rate"],
            rate,
            PAPER[method]["density"],
            density.density,
            density.per_instance_mb,
        )
    if density_limit is not None:
        result.add_note(
            f"density sweep capped at {density_limit} instances per method"
        )
    result.raw["measurements"] = measurements
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="table3",
        title="Cache density limit and parallel creation rate",
        entry=run_table3,
        profiles={
            "full": {},
            "quick": {
                "density_limit": 6000,
                "rate_targets": {
                    "microvm": 64,
                    "container": 400,
                    "process": 1000,
                    "seuss_uc": 4000,
                },
            },
            "smoke": {
                "density_limit": 1500,
                "rate_targets": {
                    "microvm": 16,
                    "container": 100,
                    "process": 250,
                    "seuss_uc": 1000,
                },
            },
        },
        tags=("paper", "table", "slow"),
    )
)
