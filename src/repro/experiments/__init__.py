"""Experiment harnesses: one module per paper table/figure.

Each ``run_*`` function returns an
:class:`~repro.experiments.base.ExperimentResult` whose rows mirror the
paper's artifact, with paper-reference values alongside measured ones.
The CLI (``seuss-repro`` / ``python -m repro.experiments.runner``)
regenerates everything; the functions below are importable directly for
programmatic use.
"""

from repro.experiments.base import ExperimentResult, registry

__all__ = [
    "ExperimentResult",
    "registry",
    "run_ablations",
    "run_autoao",
    "run_codesize",
    "run_distributed",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_ksm_contrast",
    "run_sensitivity",
    "run_table1",
    "run_table2",
    "run_table3",
]

_LAZY = {
    "run_table1": "repro.experiments.table1",
    "run_table2": "repro.experiments.table2",
    "run_table3": "repro.experiments.table3",
    "run_figure4": "repro.experiments.figure4",
    "run_figure5": "repro.experiments.figure5",
    "run_figure6": "repro.experiments.bursts",
    "run_figure7": "repro.experiments.bursts",
    "run_figure8": "repro.experiments.bursts",
    "run_ablations": "repro.experiments.extensions",
    "run_autoao": "repro.experiments.extensions",
    "run_distributed": "repro.experiments.extensions",
    "run_ksm_contrast": "repro.experiments.extensions",
    "run_sensitivity": "repro.experiments.sensitivity",
    "run_codesize": "repro.experiments.codesize",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
