"""Experiment harnesses: one module per paper table/figure.

Each ``run_*`` function returns an
:class:`~repro.experiments.base.ExperimentResult` whose rows mirror the
paper's artifact, with paper-reference values alongside measured ones.
The CLI (``seuss-repro`` / ``python -m repro.experiments.runner``)
regenerates everything; the functions below are importable directly for
programmatic use.
"""

from repro.experiments.base import (
    ExperimentRegistry,
    ExperimentResult,
    ExperimentSpec,
    registry,
)

__all__ = [
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentSpec",
    "load_all",
    "registry",
    "run_ablations",
    "run_autoao",
    "run_codesize",
    "run_density",
    "run_distributed",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_fleet",
    "run_keepalive",
    "run_ksm_contrast",
    "run_latency",
    "run_overload",
    "run_prefetch",
    "run_scale",
    "run_sensitivity",
    "run_table1",
    "run_table2",
    "run_table3",
]

_LAZY = {
    "run_table1": "repro.experiments.table1",
    "run_table2": "repro.experiments.table2",
    "run_table3": "repro.experiments.table3",
    "run_figure4": "repro.experiments.figure4",
    "run_figure5": "repro.experiments.figure5",
    "run_figure6": "repro.experiments.bursts",
    "run_figure7": "repro.experiments.bursts",
    "run_figure8": "repro.experiments.bursts",
    "run_ablations": "repro.experiments.extensions",
    "run_autoao": "repro.experiments.extensions",
    "run_distributed": "repro.experiments.extensions",
    "run_ksm_contrast": "repro.experiments.extensions",
    "run_sensitivity": "repro.experiments.sensitivity",
    "run_codesize": "repro.experiments.codesize",
    "run_latency": "repro.experiments.latency",
    "run_prefetch": "repro.experiments.prefetch",
    "run_overload": "repro.experiments.overload",
    "run_scale": "repro.experiments.scale",
    "run_density": "repro.experiments.density",
    "run_fleet": "repro.experiments.fleet",
    "run_keepalive": "repro.experiments.keepalive",
}

#: Every module that registers specs, in display order (``all`` runs
#: and ``--list`` follow registration order).
EXPERIMENT_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.table2",
    "repro.experiments.table3",
    "repro.experiments.figure4",
    "repro.experiments.figure5",
    "repro.experiments.bursts",
    "repro.experiments.extensions",
    "repro.experiments.latency",
    "repro.experiments.sensitivity",
    "repro.experiments.codesize",
    "repro.experiments.prefetch",
    "repro.experiments.chaos",
    "repro.experiments.overload",
    "repro.experiments.scale",
    "repro.experiments.density",
    "repro.experiments.fleet",
    "repro.experiments.keepalive",
)


def load_all() -> ExperimentRegistry:
    """Import every experiment module and return the populated registry.

    Idempotent (modules register identical specs on re-import), and
    safe to call from suite worker processes.
    """
    import importlib

    for module in EXPERIMENT_MODULES:
        importlib.import_module(module)
    # Display order must not depend on who imported an experiment module
    # first: canonicalize to EXPERIMENT_MODULES order (stable within a
    # module, unknown modules last).
    module_order = {name: i for i, name in enumerate(EXPERIMENT_MODULES)}
    registry.sort(
        key=lambda spec: module_order.get(
            getattr(spec.entry, "__module__", ""), len(module_order)
        )
    )
    return registry


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
