"""Figures 6, 7, 8 — platform resiliency to request bursts.

A rate-throttled background stream of IO-bound functions (128 workers,
16 functions, 72 req/s, 250 ms external block) runs continuously while
bursts of 128 concurrent invocations of a fresh CPU-bound function
(~150 ms) arrive every 32 s (Figure 6), 16 s (Figure 7) or 8 s
(Figure 8).  The Linux node runs with the 256-container stemcell cache
enabled, as in the paper.

Expected shape (all reproduced here):

* Linux, 32 s — early bursts absorbed by stemcells; around the 5th
  burst the container cache limit is hit and requests start to error.
* Linux, 16 s / 8 s — the pool cannot repopulate between bursts; cold
  starts reach 10-60 s, errors appear sooner, and at 8 s the background
  stream itself starts failing ("the Linux node gets overwhelmed").
* SEUSS — every request succeeds at every frequency; each burst adds
  one snapshot; only at 8 s does CPU contention disturb the background.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.cluster import FaasCluster
from repro.linuxnode.config import LinuxNodeConfig
from repro.metrics.stats import percentile
from repro.sim import Environment
from repro.workload.burst import BurstConfig, BurstResult, BurstWorkload

#: Paper figure id per burst interval.
FIGURE_FOR_INTERVAL_S = {32: "figure6", 16: "figure7", 8: "figure8"}

#: Linux runs the burst experiments with stemcells enabled at 256.
LINUX_BURST_CONFIG = LinuxNodeConfig(stemcell_pool_size=256)

#: Bursts per run: enough to expose cache exhaustion at every interval.
DEFAULT_BURST_COUNTS = {32: 8, 16: 12, 8: 16}


#: Seed of :class:`BurstConfig`'s arrival schedule.
DEFAULT_SEED = 0xB0257


def run_burst_scenario(
    interval_s: int,
    backend: str,
    burst_count: Optional[int] = None,
    burst_size: int = 128,
    seed: int = DEFAULT_SEED,
) -> BurstResult:
    """One full burst run on one backend.

    A cache-occupancy monitor rides along (attached to the result as
    ``cache_monitor``): container count on Linux, cached snapshots on
    SEUSS — the series that explains *when* the Linux node starts
    failing (occupancy marches into the 1024-container limit) and why
    SEUSS never does (one ~2 MB snapshot per burst).
    """
    from repro.metrics.monitor import Monitor

    env = Environment()
    if backend == "seuss":
        cluster = FaasCluster.with_seuss_node(env)
        probe = lambda: len(cluster.node.snapshot_cache)  # noqa: E731
    elif backend == "linux":
        cluster = FaasCluster.with_linux_node(env, config=LINUX_BURST_CONFIG)
        probe = lambda: cluster.node.total_containers  # noqa: E731
    else:
        raise ValueError(f"unknown backend {backend!r}")
    monitor = Monitor(env, probe, interval_ms=1000.0, name=f"{backend}-cache")
    monitor.start()
    config = BurstConfig(
        burst_interval_ms=interval_s * 1000.0,
        burst_count=burst_count or DEFAULT_BURST_COUNTS.get(interval_s, 8),
        burst_size=burst_size,
        seed=seed,
    )
    result = BurstWorkload(config).run(cluster)
    monitor.stop()
    result.cache_monitor = monitor
    return result


def _summarize(result: BurstResult) -> Dict[str, float]:
    background = result.background_latencies()
    return {
        "burst_errors": result.burst_errors,
        "background_errors": result.background_errors,
        "first_failing_burst": result.first_failing_burst(),
        "max_burst_latency_s": result.burst_latency_max_ms() / 1000.0,
        "background_p50_ms": percentile(background, 50) if background else 0.0,
        "background_p99_ms": percentile(background, 99) if background else 0.0,
    }


def run_burst_figure(
    interval_s: int,
    burst_count: Optional[int] = None,
    burst_size: int = 128,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Reproduce one of Figures 6-8 (both backends)."""
    figure = FIGURE_FOR_INTERVAL_S.get(interval_s, f"burst-{interval_s}s")
    result = ExperimentResult(
        experiment_id=figure,
        title=f"Request burst sent every {interval_s} seconds",
        headers=[
            "backend",
            "burst errors",
            "bg errors",
            "first failing burst",
            "max burst latency (s)",
            "bg p50 (ms)",
            "bg p99 (ms)",
        ],
    )
    runs: Dict[str, BurstResult] = {}
    for backend in ("linux", "seuss"):
        run = run_burst_scenario(
            interval_s, backend, burst_count, burst_size, seed
        )
        runs[backend] = run
        summary = _summarize(run)
        result.add_row(
            backend,
            summary["burst_errors"],
            summary["background_errors"],
            summary["first_failing_burst"] or "-",
            summary["max_burst_latency_s"],
            summary["background_p50_ms"],
            summary["background_p99_ms"],
        )
    seuss = runs["seuss"]
    linux_monitor = getattr(runs["linux"], "cache_monitor", None)
    if linux_monitor is not None and linux_monitor.samples:
        limit = LINUX_BURST_CONFIG.container_cache_limit
        hit_at = linux_monitor.first_time_reaching(limit)
        if hit_at is not None:
            result.add_note(
                f"Linux container cache hit its {limit} limit at "
                f"{hit_at / 1000:.0f} s (peak {linux_monitor.max():.0f})"
            )
        else:
            result.add_note(
                f"Linux container cache peaked at {linux_monitor.max():.0f} "
                f"of {limit}"
            )
    result.add_note(
        "paper: SEUSS handles every request across all burst frequencies "
        f"(measured SEUSS errors: {seuss.total_errors})"
    )
    snapshots_added = len(
        {burst[0].function_key for burst in seuss.bursts if burst}
    )
    result.add_note(
        f"each burst adds one snapshot to the SEUSS cache "
        f"(measured: {snapshots_added} unique burst functions)"
    )
    result.raw["runs"] = runs
    return result


def run_figure6(**kwargs) -> ExperimentResult:
    return run_burst_figure(32, **kwargs)


def run_figure7(**kwargs) -> ExperimentResult:
    return run_burst_figure(16, **kwargs)


def run_figure8(**kwargs) -> ExperimentResult:
    return run_burst_figure(8, **kwargs)


def _burst_spec(
    figure: str, interval_s: int, quick_bursts: int, smoke_bursts: int
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id=figure,
        title=f"Request burst sent every {interval_s} seconds",
        entry={"figure6": run_figure6, "figure7": run_figure7, "figure8": run_figure8}[figure],
        profiles={
            "full": {},
            "quick": {"burst_count": quick_bursts},
            "smoke": {"burst_count": smoke_bursts, "burst_size": 32},
        },
        default_seed=DEFAULT_SEED,
        tags=("paper", "figure", "burst", "slow"),
    )


FIGURE6_SPEC = registry.register(_burst_spec("figure6", 32, 6, 3))
FIGURE7_SPEC = registry.register(_burst_spec("figure7", 16, 8, 3))
FIGURE8_SPEC = registry.register(_burst_spec("figure8", 8, 10, 4))
