"""Code-size sweep: why warm/hot starts grow more valuable.

Table 1's discussion notes that import+compile is the dominant cold
cost for even a one-line NOP and "will grow in proportion to the code
size of the function being run, making warm and hot starts even more
beneficial".  This extension quantifies that: cold, warm and hot
latency (and function-snapshot size) as source size sweeps from the
NOP's 0.1 KB to a 1 MB bundle.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.records import FunctionSpec
from repro.seuss.node import SeussNode
from repro.sim import Environment

DEFAULT_CODE_KB = (0.1, 10.0, 100.0, 1000.0)


def measure_code_size(code_kb: float) -> Dict[str, float]:
    """Cold/warm/hot latency + snapshot size for one source size."""
    node = SeussNode(Environment())
    node.initialize_sync()
    fn = FunctionSpec(name="sized", owner=f"kb-{code_kb:g}", code_kb=code_kb)
    cold = node.invoke_sync(fn)
    hot = node.invoke_sync(fn)
    node.uc_cache.drop_function(fn.key)
    warm = node.invoke_sync(fn)
    snapshot = node.snapshot_cache.get(fn.key)
    assert cold.success and warm.success and hot.success
    return {
        "cold_ms": cold.latency_ms,
        "warm_ms": warm.latency_ms,
        "hot_ms": hot.latency_ms,
        "snapshot_mb": snapshot.size_mb,
    }


def run_codesize(code_sizes_kb: Sequence[float] = DEFAULT_CODE_KB) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="codesize",
        title="Invocation latency vs. function code size",
        headers=[
            "code (KB)",
            "cold (ms)",
            "warm (ms)",
            "hot (ms)",
            "cold/warm",
            "fn snapshot (MB)",
        ],
    )
    for code_kb in code_sizes_kb:
        sample = measure_code_size(code_kb)
        result.add_row(
            code_kb,
            sample["cold_ms"],
            sample["warm_ms"],
            sample["hot_ms"],
            sample["cold_ms"] / sample["warm_ms"],
            sample["snapshot_mb"],
        )
    result.add_note(
        "import+compile grows with source size; warm starts pay only the "
        "per-MB COW cost of the (larger) snapshot, and hot starts pay "
        "nothing — 'making warm and hot starts even more beneficial' (§7)"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="codesize",
        title="Invocation latency vs. function code size",
        entry=run_codesize,
        profiles={
            "full": {},
            "quick": {"code_sizes_kb": (0.1, 100.0)},
            "smoke": {"code_sizes_kb": (0.1, 10.0)},
        },
        tags=("extension",),
    )
)
