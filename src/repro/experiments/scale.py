"""Scale — the sharded control plane (extension beyond the paper).

The paper's testbed runs one controller in front of one SEUSS node, and
Table 3 pins the control plane's serial bottleneck: one shim TCP
connection sustains ~128 req/s no matter how many cores sit behind it.
This experiment measures what the :mod:`repro.faas.sharding` control
plane buys at fleet scale, sweeping node count x shard count x offered
rate over a Zipf-skewed function popularity mix (a handful of hot
functions, a long cold tail — the shape production FaaS traces report):

* **Throughput** — every controller shard owns its own shim connection,
  so the req/s ceiling should scale with the shard count until node
  cores saturate.  One shard is the paper's wiring and pins the wall;
  2/4 shards should climb past it at offered rates above ~128 req/s.
* **Locality** — ``snapshot_affinity`` routing steers each function to
  a node that already holds its snapshot / working set, turning
  would-be colds into warms; ``round_robin`` sprays blindly.  The
  report's locality hit rate quantifies how often affinity finds a
  holder (the ``-m scale`` test pins >= 70% under the Zipf mix).

Offered load is open-loop Poisson (arrivals do not wait for
completions), so a saturated single-shard arm shows queue growth as
elapsed time stretching past the arrival window — throughput is
completions per second of *elapsed* time including the drain, which is
exactly the sustainable-rate measurement.

One unrecorded sequential warmup pass populates the snapshot caches
(round-robin across nodes, so holders are spread) before the measured
window; the measured window then contends on the control plane, which
is the subsystem under test.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Generator, List, Sequence

from repro.costs import DEFAULT_COSTS
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.cluster import FaasCluster
from repro.faas.records import FunctionSpec
from repro.faas.routing import RoutingStats
from repro.metrics.collector import LatencyRecorder
from repro.metrics.resilience import ResilienceReport
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import cpu_bound_function

#: Distinct functions in the Zipf mix: enough that no node holds them
#: all (locality is earned, not free) but small enough that one warmup
#: pass covers the set.
FUNCTION_COUNT = 36
#: Zipf skew; ~1.2 matches the head-heavy popularity production FaaS
#: traces report (a few functions dominate, most are rare).
ZIPF_S = 1.2
#: Short CPU-bound bodies: node cores stay plentiful so the offered
#: rates saturate the control plane (the subsystem under test), not
#: the compute fleet.
EXEC_MS = 4.0

DEFAULT_NODE_COUNTS = (2, 4)
DEFAULT_SHARD_COUNTS = (1, 2, 4)
#: Offered req/s: one point well under the single-shim ceiling
#: (~128/s from the cost book), one well over it.
DEFAULT_RATES = (60.0, 240.0)
DEFAULT_ROUTINGS = ("round_robin", "snapshot_affinity")
DEFAULT_DURATION_MS = 2000.0


def shard_ceiling_rps() -> float:
    """One shim connection's sustainable rate, from the cost book."""
    return DEFAULT_COSTS.platform.shim_max_rate_per_s


def zipf_weights(count: int = FUNCTION_COUNT, s: float = ZIPF_S) -> List[float]:
    """Unnormalized Zipf popularity: rank r gets weight 1/r^s."""
    return [1.0 / (rank**s) for rank in range(1, count + 1)]


class ZipfSampler:
    """Seeded Zipf-distributed index sampler (CDF + bisect)."""

    def __init__(self, count: int, s: float, seed: int) -> None:
        self._rng = random.Random(seed)
        self._cdf: List[float] = []
        total = 0.0
        for weight in zipf_weights(count, s):
            total += weight
            self._cdf.append(total)
        self._total = total

    def sample(self) -> int:
        return bisect_right(self._cdf, self._rng.random() * self._total)

    def uniform_gap_ms(self, rate_per_s: float) -> float:
        return self._rng.expovariate(rate_per_s) * 1000.0


def _scale_functions() -> List[FunctionSpec]:
    return [
        cpu_bound_function(f"scale-{index}", owner="scale", exec_ms=EXEC_MS)
        for index in range(FUNCTION_COUNT)
    ]


def _client(cluster: FaasCluster, fn, recorder: LatencyRecorder) -> Generator:
    result = yield cluster.invoke(fn)
    recorder.add(result)


def _open_loop(
    cluster: FaasCluster,
    functions: Sequence[FunctionSpec],
    sampler: ZipfSampler,
    rate_per_s: float,
    duration_ms: float,
    recorder: LatencyRecorder,
) -> Generator:
    """Poisson arrivals over the Zipf mix, then drain the clients."""
    env = cluster.env
    clients = []
    window_end = env.now + duration_ms
    while True:
        fn = functions[sampler.sample()]
        clients.append(env.process(_client(cluster, fn, recorder)))
        gap_ms = sampler.uniform_gap_ms(rate_per_s)
        if env.now + gap_ms >= window_end:
            break
        yield env.timeout(gap_ms)
    yield env.all_of(clients)


def run_scale_trial(
    node_count: int,
    shards: int,
    routing: str,
    rate_per_s: float,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0x5CA1E,
) -> "tuple[LatencyRecorder, ResilienceReport, float]":
    """One open-loop trial; returns (recorder, report, elapsed_ms)."""
    env = Environment()
    cluster = FaasCluster.with_seuss_node(
        env, shards=shards, routing=routing
    )
    for _ in range(node_count - 1):
        node = SeussNode(env, costs=cluster.costs)
        node.initialize_sync()
        cluster.add_node(node)
    functions = _scale_functions()
    # Warmup (unrecorded): one sequential pass spreads each function's
    # cold start — and therefore its snapshot — round-robin across the
    # fleet, so the measured window routes against real holder state.
    for fn in functions:
        env.run(until=cluster.invoke(fn))
    # The warmup pass is all forced locality misses (nothing holds
    # anything yet); zero the routing counters so the report scores the
    # measured window only.
    for shard in cluster.control_plane.shards:
        shard.router.stats = RoutingStats()
    sampler = ZipfSampler(FUNCTION_COUNT, ZIPF_S, seed)
    recorder = LatencyRecorder()
    started_ms = env.now
    process = env.process(
        _open_loop(
            cluster, functions, sampler, rate_per_s, duration_ms, recorder
        )
    )
    env.run(until=process)
    elapsed_ms = env.now - started_ms
    return recorder, ResilienceReport.from_cluster(cluster), elapsed_ms


def run_scale(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    rates: Sequence[float] = DEFAULT_RATES,
    routings: Sequence[str] = DEFAULT_ROUTINGS,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0x5CA1E,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="scale",
        title="Sharded control plane: throughput and snapshot locality",
        headers=[
            "nodes",
            "shards",
            "routing",
            "offered/s",
            "tput/s",
            "locality %",
            "p50 ms",
            "p99 ms",
        ],
    )
    aggregates = {}
    for node_count in node_counts:
        for shards in shard_counts:
            for routing in routings:
                for rate in rates:
                    recorder, report, elapsed_ms = run_scale_trial(
                        node_count,
                        shards,
                        routing,
                        rate,
                        duration_ms=duration_ms,
                        seed=seed,
                    )
                    completed = sum(
                        1 for r in recorder.results if r.success
                    )
                    throughput = (
                        completed * 1000.0 / elapsed_ms if elapsed_ms else 0.0
                    )
                    summary = recorder.summary()
                    result.add_row(
                        node_count,
                        shards,
                        routing,
                        round(rate, 1),
                        round(throughput, 1),
                        round(report.locality_hit_rate * 100.0, 1),
                        round(summary.p50, 2),
                        round(summary.p99, 2),
                    )
                    key = (node_count, shards, routing, rate)
                    aggregates[key] = {
                        "throughput_per_sec": throughput,
                        "locality_hit_rate": report.locality_hit_rate,
                        "spills": report.spills,
                        "shard_dispatch": dict(report.shard_dispatch),
                        "elapsed_ms": elapsed_ms,
                        "p99_ms": summary.p99,
                    }
    result.raw["aggregates"] = aggregates
    result.add_note(
        f"open-loop Poisson arrivals for {duration_ms:.0f} ms over "
        f"{FUNCTION_COUNT} functions with Zipf(s={ZIPF_S}) popularity; "
        f"{EXEC_MS:.0f} ms CPU-bound bodies keep cores plentiful so the "
        "control plane is the contended resource"
    )
    result.add_note(
        "tput/s = completions per second of elapsed time (arrival window "
        "+ drain): a single shard pins the paper's one-shim ceiling "
        f"(~{shard_ceiling_rps():.0f} req/s from the cost book), each "
        "extra shard adds its own shim connection"
    )
    result.add_note(
        "locality % = affinity decisions that landed on a node already "
        "holding the function's snapshot/working set (0 under "
        "round_robin, which never consults holder state)"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="scale",
        title="Sharded control plane: throughput and snapshot locality",
        entry=run_scale,
        profiles={
            "full": {},
            "quick": {
                "node_counts": (4,),
                "shard_counts": (1, 4),
                "rates": (240.0,),
                "duration_ms": 600.0,
            },
            "smoke": {
                "node_counts": (2,),
                "shard_counts": (1, 2),
                "rates": (150.0,),
                "routings": ("snapshot_affinity",),
                "duration_ms": 250.0,
            },
        },
        default_seed=0x5CA1E,
        tags=("extension", "scale", "slow"),
    )
)
