"""Table 2 — latency improvements across anticipatory optimizations.

Cold- and warm-start latency of the NOP JavaScript function under the
three AO configurations: none, network-path only, and
network + interpreter.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.metrics.stats import mean
from repro.seuss.config import AOLevel, SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import nop_function

#: Paper reference values, ms (Table 2).
PAPER_COLD_MS = {
    AOLevel.NONE: 42.0,
    AOLevel.NETWORK: 16.8,
    AOLevel.NETWORK_AND_INTERPRETER: 7.5,
}
PAPER_WARM_MS = {
    AOLevel.NONE: 7.6,
    AOLevel.NETWORK: 5.5,
    AOLevel.NETWORK_AND_INTERPRETER: 3.5,
}


def measure_ao_level(
    ao_level: AOLevel, invocations: int = 50
) -> Tuple[float, float]:
    """(mean cold ms, mean warm ms) for one AO configuration."""
    node = SeussNode(Environment(), SeussConfig(ao_level=ao_level))
    node.initialize_sync()
    cold_ms = []
    warm_ms = []
    for index in range(invocations):
        fn = nop_function(owner=f"t2-{ao_level.value}-{index}")
        cold = node.invoke_sync(fn)
        node.uc_cache.drop_function(fn.key)
        warm = node.invoke_sync(fn)
        assert cold.success and warm.success
        cold_ms.append(cold.latency_ms)
        warm_ms.append(warm.latency_ms)
    return mean(cold_ms), mean(warm_ms)


def run_table2(invocations: int = 50) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Latency improvements across anticipatory optimizations",
        headers=[
            "AO level",
            "paper cold (ms)",
            "measured cold (ms)",
            "paper warm (ms)",
            "measured warm (ms)",
        ],
    )
    measured: Dict[AOLevel, Tuple[float, float]] = {}
    for level in AOLevel:
        cold_ms, warm_ms = measure_ao_level(level, invocations)
        measured[level] = (cold_ms, warm_ms)
        result.add_row(
            level.value,
            PAPER_COLD_MS[level],
            cold_ms,
            PAPER_WARM_MS[level],
            warm_ms,
        )
    result.raw["measured"] = measured
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="table2",
        title="Latency improvements across anticipatory optimizations",
        entry=run_table2,
        profiles={
            "full": {},
            "quick": {"invocations": 10},
            "smoke": {"invocations": 3},
        },
        tags=("paper", "table"),
    )
)
