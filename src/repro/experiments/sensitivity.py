"""Cost-model sensitivity analysis.

The calibration (docs/calibration.md) fixes each constant from the
paper; this harness answers the follow-up question a reviewer would
ask: *how much do the headline results depend on any one constant?*
``sweep`` rebuilds the cost book with one field scaled and re-measures
a metric; ``run_sensitivity`` sweeps the three constants the headline
claims actually hinge on:

* ``platform.shim_service_ms`` — sets the SEUSS throughput plateau
  (Figure 4) almost 1:1;
* ``linux.container_create_per_concurrent_ms`` — sets the Linux
  collapse depth (the ~50x all-unique gap);
* ``seuss.import_compile_base_ms`` — dominates the cold start, but the
  plateau barely moves (the shim, not the node, is the bottleneck —
  the paper's own diagnosis).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

from repro.costs import CostBook, DEFAULT_COSTS
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.errors import ConfigError

#: A metric: CostBook -> float.
Metric = Callable[[CostBook], float]

DEFAULT_SCALES = (0.5, 1.0, 2.0)


def scaled_costbook(field_path: str, scale: float) -> CostBook:
    """A CostBook with one ``model.field`` scaled by ``scale``."""
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    try:
        model_name, field_name = field_path.split(".")
    except ValueError:
        raise ConfigError(
            f"field path {field_path!r} must look like 'seuss.uc_create_ms'"
        ) from None
    base = DEFAULT_COSTS
    if not hasattr(base, model_name):
        raise ConfigError(f"unknown cost model {model_name!r}")
    model = getattr(base, model_name)
    if not hasattr(model, field_name):
        raise ConfigError(f"{model_name} has no field {field_name!r}")
    value = getattr(model, field_name)
    patched_model = dataclasses.replace(model, **{field_name: value * scale})
    return dataclasses.replace(base, **{model_name: patched_model})


def sweep(
    field_path: str,
    metric: Metric,
    scales: Sequence[float] = DEFAULT_SCALES,
) -> Dict[float, float]:
    """Measure ``metric`` with ``field_path`` scaled by each factor."""
    return {
        scale: metric(scaled_costbook(field_path, scale)) for scale in scales
    }


# -- headline metrics ---------------------------------------------------------


def seuss_plateau_rps(costs: CostBook) -> float:
    """Figure 4's SEUSS throughput plateau (all-cold, 32 threads)."""
    from repro.faas.cluster import FaasCluster
    from repro.sim import Environment
    from repro.workload.functions import unique_nop_set
    from repro.workload.generator import run_trial

    cluster = FaasCluster.with_seuss_node(Environment(), costs=costs)
    trial = run_trial(
        cluster, unique_nop_set(4096), invocation_count=1200, workers=32
    )
    return trial.metrics.throughput_per_s(warmup_fraction=0.5)


def linux_saturated_rps(costs: CostBook) -> float:
    """Figure 4's Linux throughput once the cache is saturated."""
    from repro.faas.cluster import FaasCluster
    from repro.sim import Environment
    from repro.workload.functions import unique_nop_set
    from repro.workload.generator import run_trial

    cluster = FaasCluster.with_linux_node(Environment(), costs=costs)
    trial = run_trial(
        cluster, unique_nop_set(4096), invocation_count=800, workers=32
    )
    return trial.metrics.throughput_per_s(warmup_fraction=0.5)


def seuss_cold_ms(costs: CostBook) -> float:
    """Table 1's cold-start latency."""
    from repro.seuss.node import SeussNode
    from repro.sim import Environment
    from repro.workload.functions import nop_function

    node = SeussNode(Environment(), costs=costs)
    node.initialize_sync()
    return node.invoke_sync(nop_function()).latency_ms


#: The swept constants and the metric each one is expected to move.
HEADLINE_SWEEPS = (
    ("platform.shim_service_ms", "SEUSS plateau (req/s)", seuss_plateau_rps),
    (
        "linux.container_create_per_concurrent_ms",
        "Linux saturated (req/s)",
        linux_saturated_rps,
    ),
    ("seuss.import_compile_base_ms", "SEUSS cold start (ms)", seuss_cold_ms),
    ("platform.shim_service_ms", "SEUSS cold start (ms)", seuss_cold_ms),
)


def run_sensitivity(
    scales: Sequence[float] = DEFAULT_SCALES,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sensitivity",
        title="Cost-model sensitivity of the headline results",
        headers=["constant", "metric"]
        + [f"x{scale:g}" for scale in scales],
    )
    for field_path, label, metric in HEADLINE_SWEEPS:
        values = sweep(field_path, metric, scales)
        result.add_row(
            field_path, label, *[values[scale] for scale in scales]
        )
    result.add_note(
        "the plateau tracks the shim constant ~1:1 and ignores the node's "
        "import cost — the paper's diagnosis that the shim, not the node, "
        "limits SEUSS throughput"
    )
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="sensitivity",
        title="Cost-model sensitivity of the headline results",
        entry=run_sensitivity,
        profiles={
            "full": {},
            "quick": {"scales": (1.0, 2.0)},
            "smoke": {"scales": (1.0, 2.0)},
        },
        tags=("extension", "analysis"),
    )
)
