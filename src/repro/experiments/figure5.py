"""Figure 5 — end-to-end request latency percentiles.

Latency of the NOP JavaScript function at three function set sizes,
reported as the 1st/25th/50th/75th/99th percentiles and the mean, for
both backends.  The paper's figure makes two points this harness
preserves: at small set sizes the distributions are comparable (Linux
slightly ahead — the shim hop), and at saturating set sizes the Linux
distribution explodes by orders of magnitude while SEUSS's barely moves
(note the figure's very different Y-axis ranges).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.faas.cluster import FaasCluster
from repro.metrics.stats import LatencySummary
from repro.sim import Environment
from repro.workload.functions import unique_nop_set
from repro.workload.generator import run_trial

#: The three set sizes of the paper's panels.
DEFAULT_SET_SIZES = (64, 2048, 65536)
DEFAULT_WORKERS = 32
DEFAULT_INVOCATIONS = 4000
DEFAULT_SEED = 0xF16_5


def measure_latency_summary(
    set_size: int,
    backend: str,
    invocations: int = DEFAULT_INVOCATIONS,
    workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
) -> LatencySummary:
    env = Environment()
    functions = unique_nop_set(set_size)
    if backend == "seuss":
        cluster = FaasCluster.with_seuss_node(env)
    elif backend == "linux":
        cluster = FaasCluster.with_linux_node(env)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    trial = run_trial(
        cluster, functions, invocation_count=invocations, workers=workers, seed=seed
    )
    return trial.metrics.recorder.summary()


def run_figure5(
    set_sizes: Sequence[int] = DEFAULT_SET_SIZES,
    invocations: int = DEFAULT_INVOCATIONS,
    workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="figure5",
        title="End-to-end request latency percentiles (NOP function)",
        headers=[
            "backend",
            "set size",
            "p1 (ms)",
            "p25 (ms)",
            "p50 (ms)",
            "p75 (ms)",
            "p99 (ms)",
            "mean (ms)",
        ],
    )
    summaries: Dict[str, Dict[int, LatencySummary]] = {"linux": {}, "seuss": {}}
    for backend in ("linux", "seuss"):
        for set_size in set_sizes:
            summary = measure_latency_summary(
                set_size, backend, invocations, workers, seed
            )
            summaries[backend][set_size] = summary
            result.add_row(
                backend,
                set_size,
                summary.p1,
                summary.p25,
                summary.p50,
                summary.p75,
                summary.p99,
                summary.mean,
            )
    result.add_note(
        "successful requests only; Linux failures (timeouts) at large set "
        "sizes are reported by figure4's error column"
    )
    result.raw["summaries"] = summaries
    return result


SPEC = registry.register(
    ExperimentSpec(
        experiment_id="figure5",
        title="End-to-end request latency percentiles (NOP function)",
        entry=run_figure5,
        profiles={
            "full": {},
            "quick": {"invocations": 1500},
            "smoke": {"set_sizes": (64, 2048), "invocations": 400},
        },
        default_seed=DEFAULT_SEED,
        tags=("paper", "figure", "slow"),
    )
)
