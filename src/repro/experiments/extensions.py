"""Extension experiments beyond the paper's evaluation.

Three harnesses covering the design-choice ablations DESIGN.md calls
out and the paper's future-work directions:

* ``ablations`` — snapshot stacks, the idle-UC cache, the OOM daemon,
  and the shim bottleneck, each toggled off on the same workload;
* ``distributed`` — the §9 "DR-SEUSS" remote-warm path under the three
  transfer strategies;
* ``ksm`` — retroactive container dedup (the §5/§8 contrast): how close
  KSM gets to SEUSS density, and how long it takes to get there.
"""

from __future__ import annotations

from repro.distributed.cluster import DistributedSeussCluster
from repro.distributed.transfer import TransferStrategy
from repro.experiments.base import ExperimentResult, ExperimentSpec, registry
from repro.linuxnode.instances import InstanceKind
from repro.linuxnode.ksm import KsmDaemon
from repro.linuxnode.node import LinuxNode
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.workload.functions import nop_function


def _fresh_node(**kwargs) -> SeussNode:
    node = SeussNode(Environment(), SeussConfig(**kwargs))
    node.initialize_sync()
    return node


def run_ablations() -> ExperimentResult:
    """One row per design choice: with vs. without."""
    result = ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
        headers=["design choice", "metric", "with", "without", "factor"],
    )

    # Snapshot stacks (§3): cacheable functions under the same budget.
    stacked_node = _fresh_node(snapshot_stacks=True)
    flat_node = _fresh_node(snapshot_stacks=False)
    fn = nop_function(owner="abl-stacks")
    stacked_node.invoke_sync(fn)
    flat_node.invoke_sync(fn)
    stacked = stacked_node.snapshot_cache.get(fn.key)
    flat = flat_node.snapshot_cache.get(fn.key)
    stacked_cap = stacked_node.snapshot_cache.capacity_estimate(
        stacked.footprint_pages
    )
    flat_cap = flat_node.snapshot_cache.capacity_estimate(flat.footprint_pages)
    result.add_row(
        "snapshot stacks",
        "cacheable fn snapshots",
        stacked_cap,
        flat_cap,
        f"{stacked_cap / flat_cap:.0f}x",
    )

    # Idle-UC cache (§4): repeat-invocation latency.
    hot_node = _fresh_node(cache_idle_ucs=True)
    warm_node = _fresh_node(cache_idle_ucs=False)
    fn = nop_function(owner="abl-hot")
    hot_node.invoke_sync(fn)
    warm_node.invoke_sync(fn)
    hot_ms = hot_node.invoke_sync(fn).latency_ms
    warm_ms = warm_node.invoke_sync(fn).latency_ms
    result.add_row(
        "idle-UC cache",
        "repeat latency (ms)",
        hot_ms,
        warm_ms,
        f"{warm_ms / hot_ms:.1f}x",
    )

    # Shim connection (§6): parallel creation rate with/without the hop.
    env = Environment()
    node = SeussNode(env)
    node.initialize_sync()
    from repro.seuss.shim import ShimProcess

    shim = ShimProcess(env, node.costs.platform)

    def through_shim():
        yield from shim.forward()
        yield from node.deploy_idle_instance()

    started = env.now
    procs = [env.process(through_shim()) for _ in range(500)]
    env.run(until=env.all_of(procs))
    with_shim = 500 / ((env.now - started) / 1000.0)
    started = env.now
    procs = [env.process(node.deploy_idle_instance()) for _ in range(500)]
    env.run(until=env.all_of(procs))
    without_shim = 500 / ((env.now - started) / 1000.0)
    result.add_row(
        "single-TCP shim",
        "UC creation rate (/s)",
        with_shim,
        without_shim,
        f"{without_shim / with_shim:.0f}x",
    )
    result.add_note(
        "AO ablation is Table 2; OOM-daemon ablation is "
        "benchmarks/test_ablations.py::test_oom_daemon_ablation"
    )
    return result


def run_distributed() -> ExperimentResult:
    """§9: remote-warm latency per transfer strategy."""
    result = ExperimentResult(
        experiment_id="distributed",
        title="Distributed SEUSS (§9): remote-warm deployments",
        headers=[
            "transfer strategy",
            "cold (ms)",
            "remote-warm (ms)",
            "upfront MB",
            "saved vs cold",
        ],
    )
    # The three constant-fraction strategies; RECORDED needs a recorded
    # manifest and is evaluated by the `prefetch` experiment instead.
    classic_strategies = (
        TransferStrategy.FULL_COPY,
        TransferStrategy.ON_DEMAND,
        TransferStrategy.COLORED,
    )
    for strategy in classic_strategies:
        cluster = DistributedSeussCluster(
            Environment(), node_count=2, strategy=strategy
        )
        fn = nop_function(owner=f"dist-{strategy.value}")
        cold = cluster.invoke_sync(fn)
        cluster.nodes[cold.node_id].uc_cache.drop_function(fn.key)
        cluster._in_flight[cold.node_id] = 8
        remote = cluster.invoke_sync(fn)
        plan = cluster.interconnect.plan(remote.transferred_mb, strategy)
        result.add_row(
            strategy.value,
            cold.latency_ms,
            remote.latency_ms,
            plan.size_mb * strategy.upfront_fraction,
            f"{cold.latency_ms - remote.latency_ms:.2f} ms",
        )
    result.add_note(
        "the 114.5 MB runtime image never crosses the wire; only the "
        "~2 MB function diff does"
    )
    return result


def run_autoao(samples: int = 6) -> ExperimentResult:
    """§9: discover the AO passes automatically from first-use traces."""
    from repro.seuss.autoao import evaluate_proposals, profile_first_use

    result = ExperimentResult(
        experiment_id="autoao",
        title="Automatic AO discovery (§9): profile -> propose -> apply",
        headers=[
            "discovered pass",
            "extent",
            "seen in samples",
            "pages moved to base",
        ],
    )
    report = profile_first_use(samples=samples)
    for proposal in report.proposals:
        result.add_row(
            proposal.ao_pass,
            proposal.extent,
            f"{proposal.observed_fraction * 100:.0f}%",
            proposal.pages,
        )
    before_ms, after_ms = evaluate_proposals(report)
    result.add_note(
        f"applying the discovered passes: cold start {before_ms:.1f} ms -> "
        f"{after_ms:.1f} ms ({before_ms / after_ms:.1f}x) — the Table 2 "
        "result, rediscovered from observation"
    )
    result.raw["report"] = report
    return result


def run_ksm_contrast(containers: int = 200) -> ExperimentResult:
    """§5/§8: retroactive KSM dedup vs snapshot-time sharing."""
    result = ExperimentResult(
        experiment_id="ksm",
        title="KSM retroactive dedup vs SEUSS snapshot sharing",
        headers=["quantity", "KSM containers", "SEUSS UCs"],
    )
    env = Environment()
    node = LinuxNode(env)
    for _ in range(containers):
        env.run(until=env.process(node.deploy_instance(InstanceKind.CONTAINER)))
    daemon = KsmDaemon(env, node.allocator)
    deployed_at = env.now
    daemon.start()
    env.run(until=env.now + 120_000)  # 2 minutes of scanning
    daemon.stop()
    env.run()
    ksm_gain = daemon.effective_density_gain()
    seconds_to_converge = (
        daemon.stats.merged_pages / daemon.scan_rate_pages_per_s
    )

    seuss_node = _fresh_node()
    base = seuss_node.runtime_record("nodejs").snapshot
    idle = seuss_node.env.run(
        until=seuss_node.env.process(seuss_node.deploy_idle_instance())
    )
    seuss_gain = (base.size_mb + idle.resident_mb) / idle.resident_mb

    result.add_row("density gain over unshared", f"{ksm_gain:.2f}x", f"{seuss_gain:.0f}x")
    result.add_row(
        "time for sharing to take effect",
        f"{seconds_to_converge:.0f} s of scanning",
        "0 (at deploy)",
    )
    result.add_row("cross-tenant side channel", "yes (content-based)", "no (lineage-bounded)")
    result.add_note(
        f"KSM merged {daemon.stats.merged_pages:,} duplicate pages across "
        f"{containers} containers at ~25k pages/s"
    )
    return result


ABLATIONS_SPEC = registry.register(
    ExperimentSpec(
        experiment_id="ablations",
        title="Design-choice ablations",
        entry=run_ablations,
        profiles={"full": {}},
        tags=("extension",),
    )
)

DISTRIBUTED_SPEC = registry.register(
    ExperimentSpec(
        experiment_id="distributed",
        title="DR-SEUSS: the distributed remote-warm path",
        entry=run_distributed,
        profiles={"full": {}},
        tags=("extension", "distributed"),
    )
)

KSM_SPEC = registry.register(
    ExperimentSpec(
        experiment_id="ksm",
        title="KSM retroactive dedup vs SEUSS snapshot sharing",
        entry=run_ksm_contrast,
        profiles={
            "full": {},
            "quick": {"containers": 60},
            "smoke": {"containers": 20},
        },
        tags=("extension",),
    )
)

AUTOAO_SPEC = registry.register(
    ExperimentSpec(
        experiment_id="autoao",
        title="Automatic AO discovery (profile -> propose -> apply)",
        entry=run_autoao,
        profiles={
            "full": {},
            "quick": {"samples": 3},
            "smoke": {"samples": 2},
        },
        tags=("extension",),
    )
)
