"""Pluggable keep-alive / eviction policies for the platform caches.

SEUSS's prototype hard-codes its cache discipline: the snapshot cache
evicts LRU (§6), idle UCs are reused LIFO and reclaimed oldest-first.
Production schedulers treat that discipline as a *policy* input — the
Azure "Serverless in the Wild" scheduler derives per-function keep-alive
and pre-warm windows from idle-time histograms, and FaasCache recasts
keep-alive as greedy-dual cache replacement.  This module factors the
decision out of :class:`~repro.seuss.snapshots.SnapshotCache`,
:class:`~repro.seuss.uc_cache.IdleUCCache` and the Linux node's idle
container cache behind one small protocol, so the ``keepalive``
experiment can race policies under a production-shaped fleet trace.

A policy only *orders* eviction decisions and accounts keep-alive
quality; the caches keep full ownership of entries, refcounts and
budget accounting.  With no policy configured (the default) the caches
run their historical code paths untouched, and the ``lru`` policy is
pinned byte-identical to the seed discipline under eviction pressure.
Policies never draw randomness and never schedule simulator events, so
selecting one cannot perturb an event schedule except through the
victim order itself.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.trace import current as _active_tracer

#: Canonical selectable policy names (config validation uses this).
POLICY_NAMES = ("lru", "lifo", "hybrid", "greedy_dual")


@dataclass
class PolicyStats:
    """What one policy instance decided."""

    tracked: int = 0
    hits: int = 0
    evictions: int = 0
    requeues: int = 0
    #: Hits that landed inside the key's keep-alive window vs. after it
    #: lapsed (hybrid-histogram only; window-less policies leave these 0).
    keepalive_hits: int = 0
    expired_hits: int = 0
    #: Pre-warm accounting, charged by the keep-alive lab: instances
    #: warmed ahead of a predicted arrival, and warm milliseconds spent
    #: on pre-warms that were never used.
    prewarms: int = 0
    prewarm_wasted_ms: float = 0.0


class CachePolicy:
    """Victim selection + keep-alive windows over a set of cache keys.

    The owning cache reports lifecycle transitions (``on_insert`` /
    ``on_hit`` / ``on_remove``) and asks :meth:`victim` which key to
    evict next; :meth:`requeue` tells the policy an eviction was refused
    (live dependents) so the victim must be deprioritized.  Keep-alive
    policies additionally expose per-key :meth:`keep_alive_ms` /
    :meth:`prewarm_gap_ms` windows for TTL-style expiry and pre-warming
    (consumed by the keep-alive replay lab; the node caches are purely
    pressure-driven and only use the ordering hooks).
    """

    name = "base"

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.stats = PolicyStats()

    def now_ms(self) -> float:
        return self._clock()

    # -- ordering hooks --------------------------------------------------
    def on_insert(
        self,
        key: str,
        size_mb: float = 0.0,
        cost_ms: float = 0.0,
        prewarmed: bool = False,
    ) -> None:
        raise NotImplementedError

    def on_hit(self, key: str) -> None:
        raise NotImplementedError

    def on_remove(self, key: str, evicted: bool = True) -> None:
        raise NotImplementedError

    def victim(self) -> Optional[str]:
        raise NotImplementedError

    def requeue(self, key: str) -> None:
        raise NotImplementedError

    # -- keep-alive windows ----------------------------------------------
    def keep_alive_ms(self, key: str) -> Optional[float]:
        """How long to keep ``key`` warm after its last use (None = until
        evicted under pressure)."""
        return None

    def prewarm_gap_ms(self, key: str) -> Optional[float]:
        """Idle gap after which to re-warm ``key`` ahead of a predicted
        arrival (None = never pre-warm)."""
        return None

    def prewarm_keep_alive_ms(self, key: str) -> Optional[float]:
        """How long a *pre-warmed* (not yet used) instance of ``key``
        stays warm (defaults to the plain keep-alive window)."""
        return self.keep_alive_ms(key)

    # -- shared accounting ----------------------------------------------
    def _note_eviction(self, key: str) -> None:
        self.stats.evictions += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.counter("policy.evictions")
            tracer.event("policy.evict", policy=self.name, key=key)


class LRUPolicy(CachePolicy):
    """Least-recently-used: byte-identical to the seed discipline.

    Mirrors the ``OrderedDict`` recency order the caches keep anyway, so
    selecting it reproduces the no-policy victim sequence exactly
    (pinned by ``tests/test_policy.py`` under eviction pressure).
    """

    name = "lru"

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__(clock)
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_insert(
        self,
        key: str,
        size_mb: float = 0.0,
        cost_ms: float = 0.0,
        prewarmed: bool = False,
    ) -> None:
        self._order[key] = None
        self._order.move_to_end(key)
        self.stats.tracked += 1

    def on_hit(self, key: str) -> None:
        if key in self._order:
            self._order.move_to_end(key)
        self.stats.hits += 1

    def on_remove(self, key: str, evicted: bool = True) -> None:
        self._order.pop(key, None)
        if evicted:
            self._note_eviction(key)

    def victim(self) -> Optional[str]:
        return next(iter(self._order)) if self._order else None

    def requeue(self, key: str) -> None:
        if key in self._order:
            self._order.move_to_end(key)
        self.stats.requeues += 1


class LIFOPolicy(LRUPolicy):
    """Newest-first: evict the most recently inserted/used key.

    The stack discipline SEUSS applies *within* a function's idle-UC
    bucket, lifted to whole-cache victim selection.  Protects
    long-resident entries at the cost of thrashing the newest — the
    classic anti-LRU foil for the policy table.
    """

    name = "lifo"

    def victim(self) -> Optional[str]:
        return next(reversed(self._order)) if self._order else None

    def requeue(self, key: str) -> None:
        # Deprioritize by pushing the refused victim to the *front*
        # (oldest end), the opposite of LRU's rotation.
        if key in self._order:
            self._order.move_to_end(key, last=False)
        self.stats.requeues += 1


class HybridHistogramPolicy(CachePolicy):
    """Per-function idle-time histograms driving keep-alive windows.

    The "Serverless in the Wild" hybrid policy: every observed idle time
    (gap between consecutive uses of a key) lands in a coarse histogram.
    The keep-alive window covers the histogram's tail
    (``keep_percentile``); when the *head* of the distribution
    (``prewarm_percentile``) shows the function reliably stays idle for
    a while, the instance is instead unloaded after one bucket of
    idleness and *pre-warmed* one bucket ahead of the earliest likely
    return, then kept warm through the tail — memory is free for the
    whole predicted gap.  Keys with too few observations fall back to a
    fixed ``default_keep_alive_ms`` window.  Victim selection under
    memory pressure is plain LRU via a lazily invalidated heap (the
    histogram drives the windows, not the pressure order); a refused
    victim is pushed genuinely last until its next touch.
    """

    name = "hybrid"

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        bucket_ms: float = 60_000.0,
        bucket_count: int = 240,
        keep_percentile: float = 0.99,
        prewarm_percentile: float = 0.05,
        default_keep_alive_ms: float = 600_000.0,
        min_observations: int = 4,
    ) -> None:
        super().__init__(clock)
        if bucket_ms <= 0 or bucket_count < 1:
            raise ConfigError("histogram shape must be positive")
        if not 0.0 < prewarm_percentile <= keep_percentile <= 1.0:
            raise ConfigError("need 0 < prewarm_percentile <= keep_percentile <= 1")
        self.bucket_ms = bucket_ms
        self.bucket_count = bucket_count
        self.keep_percentile = keep_percentile
        self.prewarm_percentile = prewarm_percentile
        self.default_keep_alive_ms = default_keep_alive_ms
        self.min_observations = min_observations
        self._last_use: Dict[str, float] = {}
        #: Last *arrival* per key, surviving removal: the histogram
        #: learns from every inter-arrival gap, warm or cold — a
        #: periodic function whose instance never survives its period
        #: would otherwise stay forever unlearnable.
        self._last_arrival: Dict[str, float] = {}
        self._hist: Dict[str, Dict[int, int]] = {}
        self._seen: Dict[str, int] = {}
        #: Percentile-window cache:
        #: key -> (seen-count, keep, prewarm_gap, prewarm_keep).
        #: Windows only move when the histogram does, and the hot paths
        #: (victim scans, expiry rescheduling) read them constantly.
        self._windows: Dict[
            str, Tuple[int, float, Optional[float], float]
        ] = {}
        #: (last_use_ms, seq, key, stamp) lazy-invalidation heap: LRU
        #: victim order; requeued (refused) victims re-enter at +inf.
        self._heap: List[Tuple[float, int, str, int]] = []
        self._stamp: Dict[str, int] = {}
        self._seq = 0

    # -- histogram bookkeeping -------------------------------------------
    def observe_idle(self, key: str, idle_ms: float) -> None:
        """Record one idle gap for ``key`` (exposed for trace pre-training)."""
        bucket = min(int(idle_ms // self.bucket_ms), self.bucket_count - 1)
        hist = self._hist.setdefault(key, {})
        hist[bucket] = hist.get(bucket, 0) + 1
        self._seen[key] = self._seen.get(key, 0) + 1

    def _percentile_bucket(self, key: str, fraction: float) -> Optional[int]:
        hist = self._hist.get(key)
        seen = self._seen.get(key, 0)
        if not hist or seen < self.min_observations:
            return None
        target = fraction * seen
        running = 0
        for bucket in sorted(hist):
            running += hist[bucket]
            if running >= target:
                return bucket
        return self.bucket_count - 1

    def _window(self, key: str) -> Tuple[float, Optional[float], float]:
        """(keep, prewarm_gap, prewarm_keep) for ``key``, cached per
        histogram state."""
        seen = self._seen.get(key, 0)
        cached = self._windows.get(key)
        if cached is not None and cached[0] == seen:
            return cached[1], cached[2], cached[3]
        keep_bucket = self._percentile_bucket(key, self.keep_percentile)
        if keep_bucket is None:
            keep = self.default_keep_alive_ms
            gap: Optional[float] = None
            prewarm_keep = keep
        else:
            # The tail of the idle distribution: keep through the end
            # of the ``keep_percentile`` bucket.
            tail = (keep_bucket + 1) * self.bucket_ms
            head_bucket = self._percentile_bucket(
                key, self.prewarm_percentile
            )
            head = (head_bucket or 0) * self.bucket_ms
            if head >= 2.0 * self.bucket_ms:
                # The function reliably stays away >= ``head`` ms (only
                # ``prewarm_percentile`` of gaps are shorter): unload
                # after one bucket of idleness, pre-warm one bucket
                # before the earliest likely return, and keep the
                # pre-warmed instance through the tail of the window.
                keep = self.bucket_ms
                gap = head - self.bucket_ms
                prewarm_keep = tail - gap
            else:
                keep = tail
                gap = None
                prewarm_keep = tail
        self._windows[key] = (seen, keep, gap, prewarm_keep)
        return keep, gap, prewarm_keep

    def keep_alive_ms(self, key: str) -> Optional[float]:
        return self._window(key)[0]

    def prewarm_gap_ms(self, key: str) -> Optional[float]:
        return self._window(key)[1]

    def prewarm_keep_alive_ms(self, key: str) -> Optional[float]:
        return self._window(key)[2]

    # -- ordering hooks --------------------------------------------------
    def _push(self, key: str, sort_key: Optional[float] = None) -> None:
        if sort_key is None:
            sort_key = self._last_use[key]
        self._seq += 1
        stamp = self._stamp.get(key, 0) + 1
        self._stamp[key] = stamp
        heapq.heappush(self._heap, (sort_key, self._seq, key, stamp))

    def on_insert(
        self,
        key: str,
        size_mb: float = 0.0,
        cost_ms: float = 0.0,
        prewarmed: bool = False,
    ) -> None:
        now = self.now_ms()
        self._last_use[key] = now
        if not prewarmed:
            # A cold start is still an arrival: record the gap since
            # the previous arrival (warm or not).
            prev = self._last_arrival.get(key)
            if prev is not None:
                self.observe_idle(key, now - prev)
            self._last_arrival[key] = now
        self._push(key)
        self.stats.tracked += 1

    def on_hit(self, key: str) -> None:
        now = self.now_ms()
        last = self._last_arrival.get(key)
        if last is not None:
            idle = now - last
            keep = self.keep_alive_ms(key)
            if keep is not None and idle > keep:
                self.stats.expired_hits += 1
            else:
                self.stats.keepalive_hits += 1
                tracer = _active_tracer()
                if tracer.enabled:
                    tracer.counter("policy.keepalive_hits")
            self.observe_idle(key, idle)
        self._last_arrival[key] = now
        self._last_use[key] = now
        self._push(key)
        self.stats.hits += 1

    def on_remove(self, key: str, evicted: bool = True) -> None:
        self._last_use.pop(key, None)
        self._stamp.pop(key, None)
        if evicted:
            self._note_eviction(key)

    def victim(self) -> Optional[str]:
        while self._heap:
            sort_key, seq, key, stamp = self._heap[0]
            if self._stamp.get(key) != stamp:
                heapq.heappop(self._heap)  # stale entry
                continue
            return key
        return None

    def requeue(self, key: str) -> None:
        # Refused eviction: move the key genuinely last in the victim
        # order (without faking a use — that would poison the idle
        # histogram) until its next real touch re-ranks it.
        if key in self._last_use:
            self._push(key, sort_key=float("inf"))
        self.stats.requeues += 1


class GreedyDualPolicy(CachePolicy):
    """Greedy-dual-size-frequency keep-alive (the FaasCache policy).

    Each key carries ``priority = clock + frequency * cost / size``:
    cost is what a cold rebuild of the entry costs (milliseconds), size
    its memory footprint, frequency its hit count.  Eviction takes the
    minimum-priority key and advances the clock to that priority, so
    recency ages competitively with cheap-to-rebuild and large entries
    being evicted first.
    """

    name = "greedy_dual"

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        default_cost_ms: float = 100.0,
    ) -> None:
        super().__init__(clock)
        self.default_cost_ms = default_cost_ms
        self.clock_value = 0.0
        self._freq: Dict[str, int] = {}
        self._cost: Dict[str, float] = {}
        self._size: Dict[str, float] = {}
        self._priority: Dict[str, float] = {}
        self._heap: List[Tuple[float, int, str, int]] = []
        self._stamp: Dict[str, int] = {}
        self._seq = 0

    def _credit(self, key: str) -> None:
        self._priority[key] = self.clock_value + (
            self._freq[key] * self._cost[key] / self._size[key]
        )
        self._seq += 1
        stamp = self._stamp.get(key, 0) + 1
        self._stamp[key] = stamp
        heapq.heappush(
            self._heap, (self._priority[key], self._seq, key, stamp)
        )

    def on_insert(
        self,
        key: str,
        size_mb: float = 0.0,
        cost_ms: float = 0.0,
        prewarmed: bool = False,
    ) -> None:
        self._freq[key] = 1
        self._cost[key] = cost_ms if cost_ms > 0 else self.default_cost_ms
        self._size[key] = size_mb if size_mb > 0 else 1.0
        self._credit(key)
        self.stats.tracked += 1

    def on_hit(self, key: str) -> None:
        if key in self._freq:
            self._freq[key] += 1
            self._credit(key)
        self.stats.hits += 1

    def on_remove(self, key: str, evicted: bool = True) -> None:
        priority = self._priority.pop(key, None)
        self._freq.pop(key, None)
        self._cost.pop(key, None)
        self._size.pop(key, None)
        self._stamp.pop(key, None)
        if evicted:
            if priority is not None and priority > self.clock_value:
                self.clock_value = priority
            self._note_eviction(key)

    def victim(self) -> Optional[str]:
        while self._heap:
            priority, seq, key, stamp = self._heap[0]
            if self._stamp.get(key) != stamp:
                heapq.heappop(self._heap)  # stale entry
                continue
            return key
        return None

    def requeue(self, key: str) -> None:
        # Refused eviction: credit the key like a hit so the heap moves
        # on to the next-lowest priority.
        if key in self._freq:
            self._freq[key] += 1
            self._credit(key)
        self.stats.requeues += 1


_POLICY_CLASSES = {
    "lru": LRUPolicy,
    "lifo": LIFOPolicy,
    "hybrid": HybridHistogramPolicy,
    "greedy_dual": GreedyDualPolicy,
}


def normalize_policy_name(name: str) -> str:
    """Canonical form of a policy name (hyphens/aliases folded)."""
    folded = name.strip().lower().replace("-", "_")
    aliases = {
        "hybrid_histogram": "hybrid",
        "gd": "greedy_dual",
        "gdsf": "greedy_dual",
        "faascache": "greedy_dual",
    }
    return aliases.get(folded, folded)


def make_policy(
    name: str, clock: Optional[Callable[[], float]] = None, **kwargs
) -> CachePolicy:
    """Instantiate a policy by name (``POLICY_NAMES`` or an alias)."""
    canonical = normalize_policy_name(name)
    cls = _POLICY_CLASSES.get(canonical)
    if cls is None:
        raise ConfigError(
            f"unknown cache policy {name!r} (have {', '.join(POLICY_NAMES)})"
        )
    return cls(clock=clock, **kwargs)
