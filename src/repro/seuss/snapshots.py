"""The function-snapshot cache.

SEUSS "maintains a cache of snapshots as well as a cache of idle UCs"
(§4).  This module is the former: function key → function snapshot,
bounded by a memory budget, with LRU eviction.

Eviction respects snapshot-stack lifetime rules: "we address this
concern in our prototype by only deleting function-specific snapshots
that have no active UCs" (§6).  A snapshot whose refcount shows live
dependents is skipped; the cache asks its ``drop_idle`` callback to
destroy idle UCs first, which releases their references.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.mem.snapshot import Snapshot
from repro.seuss.policy import CachePolicy
from repro.trace import current as _active_tracer
from repro.units import mb_to_pages, pages_to_mb


@dataclass
class SnapshotCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    eviction_failures: int = 0
    quarantined: int = 0


class SnapshotCache:
    """LRU cache of function-specific snapshots, bounded by memory."""

    def __init__(
        self,
        budget_mb: float,
        drop_idle: Optional[Callable[[str], int]] = None,
        policy: Optional[CachePolicy] = None,
    ) -> None:
        self._budget_pages = mb_to_pages(budget_mb)
        self._entries: "OrderedDict[str, Snapshot]" = OrderedDict()
        self._held_pages = 0
        #: Optional pluggable eviction policy (``seuss/policy.py``).
        #: ``None`` keeps the historical hard-coded LRU path untouched;
        #: the ``lru`` policy is pinned byte-identical to it.
        self._policy = policy
        #: Callback that destroys all idle UCs of a function (returns
        #: how many were destroyed), releasing snapshot references so
        #: eviction can proceed.
        self._drop_idle = drop_idle or (lambda key: 0)
        #: Optional callback invoked with the key of every evicted
        #: entry (used by the distributed registry to drop replicas).
        self.evict_listener: Optional[Callable[[str], None]] = None
        self.stats = SnapshotCacheStats()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def held_mb(self) -> float:
        return pages_to_mb(self._held_pages)

    @property
    def budget_mb(self) -> float:
        return pages_to_mb(self._budget_pages)

    def capacity_estimate(self, snapshot_footprint_pages: int) -> int:
        """How many snapshots of a given footprint fit in the budget."""
        if snapshot_footprint_pages <= 0:
            raise ValueError("snapshot footprint must be positive")
        return self._budget_pages // snapshot_footprint_pages

    # -- cache operations ---------------------------------------------------
    def get(self, key: str) -> Optional[Snapshot]:
        snapshot = self._entries.get(key)
        if snapshot is None:
            self.stats.misses += 1
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.event("snapshot_cache.miss", key=key)
            return None
        self._entries.move_to_end(key)
        if self._policy is not None:
            self._policy.on_hit(key)
        self.stats.hits += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("snapshot_cache.hit", key=key)
        return snapshot

    def put(self, key: str, snapshot: Snapshot) -> bool:
        """Insert a snapshot, evicting LRU entries to fit the budget.

        Returns ``False`` when an entry for ``key`` already exists (a
        concurrent cold path won the insertion race); the caller should
        :meth:`~repro.mem.snapshot.Snapshot.mark_orphan` its duplicate.
        """
        if key in self._entries:
            return False
        # Charge what the capture actually claimed from the pool:
        # equals footprint_pages without dedup; with dedup, frames
        # shared with already-cached snapshots count once.
        footprint = snapshot.charged_pages
        self._make_room(footprint)
        snapshot.retain()
        self._entries[key] = snapshot
        self._held_pages += footprint
        if self._policy is not None:
            self._policy.on_insert(key, size_mb=pages_to_mb(footprint))
        self.stats.insertions += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("snapshot_cache.insert", key=key, pages=footprint)
            tracer.gauge("snapshot_cache.held_mb", self.held_mb)
        return True

    def _make_room(self, needed_pages: int) -> None:
        attempts = len(self._entries)
        while (
            self._held_pages + needed_pages > self._budget_pages
            and self._entries
            and attempts > 0
        ):
            attempts -= 1
            if self._policy is not None:
                key = self._policy.victim()
                if key is None or key not in self._entries:
                    key = next(iter(self._entries))
            else:
                key = next(iter(self._entries))  # LRU victim
            if not self._evict(key):
                # Could not delete (live dependents survived drop_idle);
                # rotate it to the back and try the next victim.
                self._entries.move_to_end(key)
                if self._policy is not None:
                    self._policy.requeue(key)
                self.stats.eviction_failures += 1

    def _evict(self, key: str) -> bool:
        snapshot = self._entries[key]
        # Destroy idle UCs deployed from this snapshot so only our own
        # reference remains.
        self._drop_idle(key)
        if snapshot.refcount > 1:
            return False  # a live invocation still depends on it
        del self._entries[key]
        if self._policy is not None:
            self._policy.on_remove(key)
        snapshot.release()
        # Deduped snapshots only free shared frames at refcount zero;
        # uncharge exactly what physically returned to the pool.
        footprint = snapshot.delete()
        self._held_pages -= footprint
        self.stats.evictions += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("snapshot_cache.evict", key=key, pages=footprint)
            tracer.gauge("snapshot_cache.held_mb", self.held_mb)
        if self.evict_listener is not None:
            self.evict_listener(key)
        return True

    def quarantine(self, key: str) -> bool:
        """Pull a corrupted snapshot out of service immediately.

        Unlike eviction, quarantine cannot be refused: the entry is
        removed from the cache even while in-flight UCs still depend on
        the snapshot (they already resolved their pages; only *new*
        deployments are at risk).  Idle UCs deployed from it are
        destroyed as suspect, and the snapshot's frames are reclaimed as
        soon as the last dependent drops.  The next invocation of the
        function misses the cache and rebuilds cold — the SEUSS
        recovery story: a bad snapshot costs one cold start.
        """
        snapshot = self._entries.pop(key, None)
        if snapshot is None:
            return False
        if self._policy is not None:
            # Quarantine is not an eviction decision; keep policy
            # eviction counts clean.
            self._policy.on_remove(key, evicted=False)
        self._held_pages -= snapshot.charged_pages
        self.stats.quarantined += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("snapshot_cache.quarantine", key=key)
        self._drop_idle(key)
        snapshot.release()
        if not snapshot.deleted:
            # Live dependents remain: reap once the last one drops.
            snapshot.mark_orphan()
        if self.evict_listener is not None:
            self.evict_listener(key)
        return True

    def evict_key(self, key: str) -> bool:
        """Explicitly evict one function's snapshot (if present)."""
        if key not in self._entries:
            return False
        return self._evict(key)

    def clear(self) -> None:
        for key in list(self._entries):
            self._evict(key)

    @property
    def hit_rate(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
