"""The three invocation paths (§4, Figure 2).

``invoke_on_node`` is a simulation process that services one invocation
on a :class:`~repro.seuss.node.SeussNode`, choosing the **hot**, **warm**
or **cold** path by cache state and charging each stage its calibrated
cost while performing the real memory mechanics against the page
substrate.  The per-stage breakdown it returns is what the Table 1 / 2
experiments report.

Every stage charge also records a child span on the invocation's root
span (:mod:`repro.trace`), so a traced run yields the §7 latency
decomposition as a machine-checkable span tree: stage spans tile the
root exactly (queue waits included), which the ``latency`` experiment
asserts.  With tracing disabled the recording calls hit the null
tracer and the invocation is byte-identical to an untraced one.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import (
    DeadlineExceededError,
    OutOfMemoryError,
    SnapshotCorruptionError,
)
from repro.faas.records import (
    FunctionSpec,
    InvocationPath,
    InvocationStage,
    NodeInvocation,
)
from repro.mem.workingset import WorkingSetRecorder
from repro.sim import Interrupted
from repro.trace import tracer_for
from repro.unikernel.context import UnikernelContext
from repro.units import pages_to_mb

#: Stage keys used in latency breakdowns.
STAGE_QUEUE_WAIT = "queue_wait"
STAGE_UC_CREATE = "uc_create"
STAGE_CONNECT = "connect"
STAGE_FAULTS = "cow_faults"
STAGE_PREFETCH = "prefetch"
STAGE_NETWORK_FIRST_USE = "network_first_use"
STAGE_IMPORT = "import_compile"
STAGE_INTERP_FIRST_USE = "interpreter_first_use"
STAGE_CAPTURE = "snapshot_capture"
STAGE_ARGS = "arg_import"
STAGE_EXEC = "execute"
STAGE_IO_WAIT = "io_wait"
STAGE_RESULT = "result_return"


def invoke_on_node(
    node,
    fn: FunctionSpec,
    deadline_ms: Optional[float] = None,
    cancel_expired: bool = False,
) -> Generator:
    """Service one invocation; yields sim events, returns NodeInvocation.

    ``node`` is a :class:`~repro.seuss.node.SeussNode` (typed loosely to
    avoid an import cycle).

    ``deadline_ms`` is the client's absolute deadline, propagated so the
    node can tell work somebody is waiting for from work nobody is: a
    successful completion past the deadline is accounted a *zombie*
    (its core time lands in ``node.wasted_ms``).  With ``cancel_expired``
    the invoker additionally aborts at stage boundaries once the
    deadline passes, and the whole process is cancellable at any yield
    — an :class:`~repro.sim.Interrupted` (from the controller's
    deadline watchdog or an admission-queue shed) unwinds the
    invocation, releases its core, UC pages and network mapping
    immediately, and returns a ``cancelled`` result.  Both default off,
    leaving the historical event schedule untouched.
    """
    env = node.env
    costs = node.costs.seuss
    started = env.now
    breakdown: Dict[str, float] = {}
    stage_times: Dict[InvocationStage, float] = {
        InvocationStage.REQUEST_RECEIVED: started
    }
    pages_copied = 0
    pages_prefetched = 0
    # Working-set record/prefetch state (only active when the node's
    # config opts in; the hot path never touches it).
    manifest = None
    manifest_key = ""
    recorder = None
    batch = None
    connect_copied = 0
    deploy_fault_mark = 0
    tracer = tracer_for(env)
    root = tracer.span(
        "invocation",
        at=started,
        category="invocation",
        function=fn.key,
        runtime=fn.runtime,
    )

    def charge(stage: str, duration: float) -> float:
        breakdown[stage] = breakdown.get(stage, 0.0) + duration
        # The caller immediately yields a timeout of ``duration``, so
        # the stage span's edges are known here, before time passes.
        root.done(stage, env.now, env.now + duration)
        return duration

    def reached(stage: InvocationStage) -> None:
        stage_times[stage] = env.now

    def check_deadline() -> None:
        # Stage-boundary deadline gate (active only with cancellation
        # on): never start the next stage for a client that already
        # gave up.  The controller's watchdog usually cancels first;
        # this catches exact-boundary races.
        if (
            cancel_expired
            and deadline_ms is not None
            and env.now >= deadline_ms
        ):
            raise Interrupted(
                DeadlineExceededError("deadline passed at stage boundary")
            )

    # Core-occupancy accounting: ``busy_ms`` is the time this invocation
    # actually held a core — the node work truly wasted if it is
    # cancelled or completes as a zombie (queue and I/O waits burn no
    # core and are not charged).
    core = None
    core_acquired_at = None
    busy_ms = 0.0
    #: A captured-but-not-yet-cached function snapshot (cold path); on
    #: cancellation it is orphaned so the UC teardown reaps its pages.
    captured = None

    try:
        # -- path selection -------------------------------------------
        injector = node.fault_injector
        uc = node.uc_cache.pop(fn.key)
        if uc is not None:
            path = InvocationPath.HOT
            fn_snapshot = None
        else:
            fn_snapshot = node.snapshot_cache.get(fn.key)
            if fn_snapshot is not None:
                if injector is not None and injector.snapshot_corrupts_on_restore():
                    fn_snapshot.corrupt()
                # Integrity gate: checksums are validated before any restore.
                # A corrupted snapshot is quarantined and the invocation
                # falls through to the cold path — one cold rebuild, no
                # client-visible failure.
                try:
                    fn_snapshot.verify()
                except SnapshotCorruptionError:
                    node.snapshot_cache.quarantine(fn.key)
                    root.event(
                        "fault.snapshot_quarantined", at=env.now, key=fn.key
                    )
                    fn_snapshot = None
            path = (
                InvocationPath.WARM
                if fn_snapshot is not None
                else InvocationPath.COLD
            )
        root.annotate(path=path.value)

        core = node.cores.request()
        queue_started = env.now
        yield core
        core_acquired_at = env.now
        root.done(STAGE_QUEUE_WAIT, queue_started, env.now)
        check_deadline()
        try:
            if path is not InvocationPath.HOT:
                runtime_record = node.runtime_record(fn.runtime)
                base = fn_snapshot if path is InvocationPath.WARM else runtime_record.snapshot
                try:
                    uc = UnikernelContext(
                        node.allocator,
                        runtime_record.runtime,
                        base=base,
                        dedup=node.dedup,
                    )
                except OutOfMemoryError as exc:
                    node.stats.errors += 1
                    root.annotate(path=InvocationPath.ERROR.value, error="oom")
                    return NodeInvocation(
                        path=InvocationPath.ERROR,
                        success=False,
                        latency_ms=env.now - started,
                        breakdown=breakdown,
                        error=f"out of memory creating UC: {exc}",
                        function_key=fn.key,
                    )
                yield env.timeout(charge(STAGE_UC_CREATE, costs.uc_create_ms))
                reached(InvocationStage.ENVIRONMENT_CREATED)
                # Deploying from any snapshot resumes inside an initialized
                # interpreter — the whole point of the method.
                reached(InvocationStage.RUNTIME_INITIALIZED)

                if node.config.prefetch_working_sets:
                    # REAP: replay the recorded working set in one batch
                    # at deploy time; misses fall back to demand faults.
                    # The first invocation per key has no manifest and
                    # runs lazily while recording.
                    manifest_key = (
                        fn.key
                        if path is InvocationPath.WARM
                        else f"runtime:{fn.runtime}"
                    )
                    manifest = node.working_sets.get(manifest_key)
                    recorder = WorkingSetRecorder(uc.space)
                    if manifest is not None:
                        batch = uc.space.resolve_batch(manifest.pages)
                        if batch.pages_resolved:
                            pages_prefetched = batch.pages_resolved
                            node.working_sets.note_prefetch(
                                batch.pages_resolved
                            )
                            if tracer.enabled:
                                tracer.counter(
                                    "prefetch.pages", batch.pages_resolved
                                )
                            yield env.timeout(
                                charge(
                                    STAGE_PREFETCH,
                                    costs.prefetch_ms(batch.mb_resolved),
                                )
                            )

                result = uc.start_listening()
                connect_copied = result.pages_copied
                pages_copied += result.pages_copied
                # Map the control channel on the resident core's proxy; it
                # is unmapped automatically when the UC is destroyed.
                node.network.connect_uc(uc)
                result = uc.accept_connection()
                connect_copied += result.pages_copied
                pages_copied += result.pages_copied
                yield env.timeout(charge(STAGE_CONNECT, costs.tcp_connect_ms))
                if recorder is not None:
                    recorder.mark_connected(connect_copied)

                if path is InvocationPath.COLD:
                    fault_ms = costs.cold_deploy_fault_ms
                    if manifest is not None:
                        # Measured residual: the constant covers the
                        # recorded connect-phase fault set, so scale it
                        # by the fraction the prefetch failed to absorb.
                        fault_ms *= min(
                            1.0,
                            connect_copied / max(1, manifest.connect_pages),
                        )
                    yield env.timeout(charge(STAGE_FAULTS, fault_ms))
                    if not runtime_record.ao_level.network:
                        yield env.timeout(
                            charge(
                                STAGE_NETWORK_FIRST_USE, costs.network_first_use_ms
                            )
                        )
                    result = uc.import_function(fn.key, fn.code_kb)
                    pages_copied += result.pages_copied
                    yield env.timeout(
                        charge(STAGE_IMPORT, costs.import_compile_ms(fn.code_kb))
                    )
                    if not runtime_record.ao_level.interpreter:
                        yield env.timeout(
                            charge(
                                STAGE_INTERP_FIRST_USE,
                                costs.interpreter_first_use_ms,
                            )
                        )
                    snapshot = uc.capture_snapshot(
                        f"fn:{fn.key}",
                        trigger_label="code_compiled",
                        flatten=not node.config.snapshot_stacks,
                        content_namespace=(
                            node.dedup.namespace(fn.key, fn.runtime)
                            if node.dedup is not None
                            else None
                        ),
                    )
                    captured = snapshot
                    yield env.timeout(
                        charge(
                            STAGE_CAPTURE, costs.snapshot_capture_ms(snapshot.size_mb)
                        )
                    )
                    if injector is not None and injector.snapshot_corrupts_on_capture():
                        # A bad capture: the damage surfaces at the next
                        # restore's checksum validation, not now.
                        snapshot.corrupt()
                        root.event(
                            "fault.snapshot_corrupted_on_capture",
                            at=env.now,
                            key=fn.key,
                        )
                    if not node.snapshot_cache.put(fn.key, snapshot):
                        # Lost the insertion race to a concurrent cold start;
                        # reap this duplicate when its UC is destroyed.
                        snapshot.mark_orphan()
                    captured = None
                    reached(InvocationStage.CODE_IMPORTED)
                else:  # WARM
                    uc.restore_function(fn.key, fn.code_kb)
                    if manifest is not None:
                        # Prefetched deploy: charge the lazy per-page
                        # rate only over the faults actually taken (the
                        # prefetch stage already paid for what it
                        # absorbed, at the cheaper batched rate).
                        deploy_fault_mark = recorder.faults_taken
                        diff_mb = pages_to_mb(deploy_fault_mark)
                    else:
                        # Warm-path COW cost scales with the function
                        # *diff*; for a flattened snapshot (no lineage)
                        # the diff is its size over the shared runtime
                        # image.
                        diff_mb = fn_snapshot.size_mb
                        if fn_snapshot.parent is None:
                            diff_mb = max(
                                0.0,
                                fn_snapshot.size_mb
                                - runtime_record.snapshot.size_mb,
                            )
                    yield env.timeout(
                        charge(
                            STAGE_FAULTS,
                            costs.warm_fault_ms(
                                diff_mb,
                                runtime_record.ao_level.interpreter,
                            ),
                        )
                    )
                    # Inherited through the function snapshot.
                    reached(InvocationStage.CODE_IMPORTED)
            else:
                reached(InvocationStage.CODE_IMPORTED)  # resident in the idle UC

            # -- common tail: args, execute, result -------------------------
            check_deadline()
            result = uc.import_args()
            pages_copied += result.pages_copied
            yield env.timeout(charge(STAGE_ARGS, costs.arg_import_ms))
            reached(InvocationStage.ARGUMENTS_LOADED)

            result = uc.execute(fn.exec_write_pages)
            pages_copied += result.pages_copied
            exec_ms = fn.exec_ms
            if injector is not None and injector.core_runs_slow():
                # Degraded-core fault: the body runs, just slower.
                exec_ms *= injector.plan.slow_core_factor
                root.event(
                    "fault.slow_core",
                    at=env.now,
                    factor=injector.plan.slow_core_factor,
                )
            yield env.timeout(charge(STAGE_EXEC, exec_ms))
            if manifest is not None and path is InvocationPath.WARM:
                # Faults taken after the deploy charge (args/exec pages
                # the manifest missed) fall back to the lazy per-MB
                # rate, so imperfect recordings cannot under-bill.
                tail_faults = recorder.faults_taken - deploy_fault_mark
                if tail_faults:
                    per_mb = (
                        costs.warm_fault_per_mb_warmed_ms
                        if runtime_record.ao_level.interpreter
                        else costs.warm_fault_per_mb_ms
                    )
                    yield env.timeout(
                        charge(STAGE_FAULTS, per_mb * pages_to_mb(tail_faults))
                    )
            if fn.io_wait_ms > 0:
                # Blocked on external I/O: the poll-based UC releases its
                # core while waiting.
                node.cores.release(core)
                core = None
                busy_ms += env.now - core_acquired_at
                core_acquired_at = None
                yield env.timeout(charge(STAGE_IO_WAIT, fn.io_wait_ms))
                core = node.cores.request()
                queue_started = env.now
                yield core
                core_acquired_at = env.now
                root.done(STAGE_QUEUE_WAIT, queue_started, env.now)
            check_deadline()
            reached(InvocationStage.EXECUTED)
            yield env.timeout(charge(STAGE_RESULT, costs.result_return_ms))
            reached(InvocationStage.RESULT_RETURNED)
        except OutOfMemoryError as exc:
            if uc is not None:
                uc.destroy()
            node.stats.errors += 1
            root.annotate(path=InvocationPath.ERROR.value, error="oom")
            return NodeInvocation(
                path=InvocationPath.ERROR,
                success=False,
                latency_ms=env.now - started,
                breakdown=breakdown,
                pages_copied=pages_copied,
                pages_prefetched=pages_prefetched,
                error=f"out of memory during {path.value} path: {exc}",
                function_key=fn.key,
            )
        finally:
            if core is not None:
                node.cores.release(core)
                core = None
            if core_acquired_at is not None:
                busy_ms += env.now - core_acquired_at
                core_acquired_at = None

        # -- working-set bookkeeping ---------------------------------------
        if recorder is not None:
            if manifest is None:
                # First invocation for this key: its write set becomes
                # the manifest later deploys prefetch.
                node.working_sets.adopt(recorder, manifest_key)
            else:
                misses = recorder.faults_taken
                replay = recorder.finish(manifest_key)
                hits = (
                    batch.resolved.intersection(replay.pages).page_count
                    if batch is not None
                    else 0
                )
                manifest.observe_replay(hits, misses)
                if tracer.enabled:
                    tracer.counter("prefetch.hits", hits)
                    tracer.counter("prefetch.misses", misses)
                    tracer.gauge("prefetch.coverage", manifest.coverage)

        # -- cache the idle UC for hot reuse --------------------------------
        cached = node.config.cache_idle_ucs and node.uc_cache.put(fn.key, uc)
        if not cached:
            uc.destroy()

        node.stats.count(path)
        root.annotate(success=True, pages_copied=pages_copied)
        if pages_prefetched:
            root.annotate(pages_prefetched=pages_prefetched)
        wasted = 0.0
        if deadline_ms is not None and env.now > deadline_ms:
            # Zombie: the answer is correct but the client stopped
            # waiting — every core-ms this burned was for nobody.
            node.zombie_count += 1
            node.wasted_ms += busy_ms
            wasted = busy_ms
            root.annotate(zombie=True, wasted_ms=busy_ms)
        else:
            node.useful_ms += busy_ms
        return NodeInvocation(
            path=path,
            success=True,
            latency_ms=env.now - started,
            breakdown=breakdown,
            pages_copied=pages_copied,
            pages_prefetched=pages_prefetched,
            function_key=fn.key,
            stage_times=stage_times,
            wasted_ms=wasted,
        )
    except Interrupted as exc:
        # Cancelled mid-flight (controller deadline watchdog, a shed
        # policy's eviction, or the stage-boundary gate above): unwind
        # now, releasing whatever was held, and report the core time
        # burned as wasted work.
        if core is not None:
            node.cores.release(core)  # handles a still-queued request too
            core = None
        if core_acquired_at is not None:
            busy_ms += env.now - core_acquired_at
            core_acquired_at = None
        if captured is not None:
            captured.mark_orphan()  # reaped by the UC teardown below
        if uc is not None:
            uc.destroy()
        cause = exc.cause
        error = str(cause) if cause is not None else "cancelled"
        node.cancelled_count += 1
        node.wasted_ms += busy_ms
        root.annotate(cancelled=True, error=error, wasted_ms=busy_ms)
        return NodeInvocation(
            path=path,
            success=False,
            latency_ms=env.now - started,
            breakdown=breakdown,
            pages_copied=pages_copied,
            pages_prefetched=pages_prefetched,
            error=error,
            function_key=fn.key,
            stage_times=stage_times,
            cancelled=True,
            wasted_ms=busy_ms,
        )
    finally:
        root.finish(at=env.now)
