"""SEUSS node configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from repro.errors import ConfigError


class AOLevel(Enum):
    """Anticipatory-optimization configurations evaluated in Table 2."""

    NONE = "none"
    NETWORK = "network"
    NETWORK_AND_INTERPRETER = "network+interpreter"

    @property
    def network(self) -> bool:
        return self is not AOLevel.NONE

    @property
    def interpreter(self) -> bool:
        return self is AOLevel.NETWORK_AND_INTERPRETER


@dataclass(frozen=True)
class SeussConfig:
    """Configuration of one SEUSS OS compute node.

    Defaults reproduce the paper's testbed: a 16-VCPU, 88 GB QEMU-KVM
    virtual machine running the SEUSS kernel, serving Node.js UCs with
    full anticipatory optimization.
    """

    memory_gb: float = 88.0
    cores: int = 16
    #: Memory held by the SEUSS kernel itself (EbbRT runtime, buffers).
    system_reserved_mb: float = 512.0
    runtimes: Tuple[str, ...] = ("nodejs",)
    ao_level: AOLevel = AOLevel.NETWORK_AND_INTERPRETER
    #: Memory budget for cached function snapshots; the remainder stays
    #: available for live and idle UCs.  70 GiB reproduces the paper's
    #: snapshot-cache capacities (~32,000 NOP snapshots with AO).
    snapshot_cache_budget_mb: float = 71_680.0
    #: Free-memory threshold below which the OOM daemon reclaims idle
    #: UCs ("as soon as the available physical memory drops below a
    #: pre-defined threshold", §6).
    oom_threshold_mb: float = 256.0
    #: Cache idle UCs after an invocation completes (the hot path).
    cache_idle_ucs: bool = True
    #: Capture function snapshots as diffs on the runtime snapshot
    #: (snapshot stacks, §3).  False is the ablation baseline: every
    #: function snapshot is a self-contained copy of the whole image
    #: ("armed with only the snapshot mechanism").
    snapshot_stacks: bool = True
    #: Upper bound on idle UCs kept per function.
    idle_ucs_per_function: int = 512
    #: Record each snapshot's first-invocation working set and prefetch
    #: it on later deploys (REAP-style, Ustiugov et al. ASPLOS 2021).
    #: Opt-in: with this off, deploys take serial demand faults exactly
    #: as before and every experiment table is unchanged.
    prefetch_working_sets: bool = False
    #: Capture-time content-addressed page dedup across function
    #: snapshots (``mem/dedup.py``): duplicate-content regions route
    #: through a refcounted shared frame table scoped by
    #: ``dedup_scope``.  Opt-in: with this off, captures allocate
    #: exactly as before and every experiment table is unchanged.
    page_dedup: bool = False
    #: Merge scope: "lineage" (a function's own snapshots only, SEUSS
    #: §5 confinement), "tenant" (one owner's functions per runtime —
    #: safe default), or "global" (cross-tenant, the KSM side channel
    #: the security audit flags).
    dedup_scope: str = "tenant"
    #: Fraction of a function snapshot's pages that are byte-identical
    #: across snapshots in the same scope (compiled stdlib, interpreter
    #: heap shapes).
    dedup_duplicate_fraction: float = 0.55
    #: Run a retroactive KSM-style scanner over the snapshot category
    #: (merges arrive over time at ``dedup_scan_rate_pages_per_s`` with
    #: the scan cost charged on the sim clock).  Opt-in.
    dedup_scanner: bool = False
    dedup_scan_rate_pages_per_s: float = 25_000.0
    #: Pluggable cache eviction / keep-alive policy for the snapshot and
    #: idle-UC caches (``seuss/policy.py``): ``"lru"`` (byte-identical
    #: to the seed discipline), ``"lifo"``, ``"hybrid"`` (idle-time
    #: histograms, "Serverless in the Wild") or ``"greedy_dual"``
    #: (FaasCache).  ``None`` keeps the historical hard-coded paths.
    cache_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ConfigError(f"memory_gb must be positive, got {self.memory_gb}")
        if self.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {self.cores}")
        if not self.runtimes:
            raise ConfigError("at least one runtime is required")
        if self.snapshot_cache_budget_mb < 0 or self.oom_threshold_mb < 0:
            raise ConfigError("memory budgets must be non-negative")
        if self.idle_ucs_per_function < 1:
            raise ConfigError("idle_ucs_per_function must be >= 1")
        if self.dedup_scope not in ("lineage", "tenant", "global"):
            raise ConfigError(
                f"dedup_scope must be lineage|tenant|global, "
                f"got {self.dedup_scope!r}"
            )
        if not 0.0 <= self.dedup_duplicate_fraction < 1.0:
            raise ConfigError(
                f"dedup_duplicate_fraction must be in [0, 1), "
                f"got {self.dedup_duplicate_fraction}"
            )
        if self.dedup_scan_rate_pages_per_s <= 0:
            raise ConfigError("dedup_scan_rate_pages_per_s must be positive")
        if self.cache_policy is not None:
            from repro.seuss.policy import POLICY_NAMES, normalize_policy_name

            canonical = normalize_policy_name(self.cache_policy)
            if canonical not in POLICY_NAMES:
                raise ConfigError(
                    f"cache_policy must be one of {POLICY_NAMES} (or None), "
                    f"got {self.cache_policy!r}"
                )
            object.__setattr__(self, "cache_policy", canonical)
