"""Automatic discovery of anticipatory optimizations (§9).

The paper's AO passes were found "through basic reasoning about the
high-level procedure of importing and deploying function code"; its
future work proposes discovering them automatically by tracing
execution.  This module implements the observational version of that
idea against the simulation's own mechanisms:

1. **Profile** — run sample cold invocations on an unwarmed node and
   collect the driver's first-use events: extents written after deploy
   that belong to no specific function (the tell-tale of a shared,
   pre-executable path).
2. **Propose** — any extent observed on at least ``threshold`` of the
   samples is a candidate AO: warming it moves those pages (and the
   path's first-use latency) into the base snapshot.
3. **Apply / evaluate** — the proposals map onto the node's AO level;
   applying them and re-measuring quantifies the win.

On the Node.js runtime this rediscovers exactly the paper's two passes
(network and interpreter warming) from observation alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.seuss.config import AOLevel, SeussConfig
from repro.seuss.node import SeussNode
from repro.sim import Environment
from repro.unikernel import interpreters as regions
from repro.unikernel.context import UnikernelContext
from repro.units import pages_to_mb

#: Which AO level warms which first-use extent.
EXTENT_TO_PASS = {
    regions.AO_NETWORK: "network",
    regions.AO_INTERPRETER: "interpreter",
}


@dataclass(frozen=True)
class AOProposal:
    """One discovered warming opportunity."""

    extent: str
    ao_pass: str
    observed_fraction: float
    pages: int

    @property
    def mb(self) -> float:
        return pages_to_mb(self.pages)


@dataclass
class DiscoveryReport:
    """Everything the profiling run learned."""

    samples: int
    first_use_counts: Dict[str, int] = field(default_factory=dict)
    proposals: List[AOProposal] = field(default_factory=list)

    def proposed_level(self) -> AOLevel:
        """The AO configuration implied by the proposals."""
        passes = {proposal.ao_pass for proposal in self.proposals}
        if "interpreter" in passes and "network" in passes:
            return AOLevel.NETWORK_AND_INTERPRETER
        if "network" in passes:
            return AOLevel.NETWORK
        return AOLevel.NONE


def profile_first_use(
    runtime_name: str = "nodejs",
    samples: int = 8,
    threshold: float = 0.5,
) -> DiscoveryReport:
    """Observe cold invocations on an unwarmed node; propose AO passes.

    Each sample is a distinct function cold-started from an unwarmed
    base snapshot; the driver records which first-use extents it had to
    write.  Function-specific writes (import, exec) never repeat across
    *different* functions' shared extents, so only genuinely common
    paths survive the threshold.
    """
    if samples < 1:
        raise ConfigError(f"samples must be >= 1, got {samples}")
    if not 0.0 < threshold <= 1.0:
        raise ConfigError(f"threshold {threshold} not in (0, 1]")

    node = SeussNode(
        Environment(),
        SeussConfig(ao_level=AOLevel.NONE, runtimes=(runtime_name,)),
    )
    node.initialize_sync()
    record = node.runtime_record(runtime_name)

    counts: Dict[str, int] = {}
    for index in range(samples):
        uc = UnikernelContext(
            node.allocator, record.runtime, base=record.snapshot
        )
        uc.start_listening()
        uc.accept_connection()
        uc.import_function(f"probe-{index}", 0.1)
        uc.import_args()
        uc.execute(38)
        for extent, hits in uc.driver.stats.first_use_events.items():
            if hits:
                counts[extent] = counts.get(extent, 0) + 1
        uc.destroy()

    report = DiscoveryReport(samples=samples, first_use_counts=dict(counts))
    layout = record.runtime.build_layout()
    for extent, observed in sorted(counts.items()):
        fraction = observed / samples
        if fraction < threshold or extent not in EXTENT_TO_PASS:
            continue
        report.proposals.append(
            AOProposal(
                extent=extent,
                ao_pass=EXTENT_TO_PASS[extent],
                observed_fraction=fraction,
                pages=layout.region(extent).npages,
            )
        )
    return report


def evaluate_proposals(
    report: DiscoveryReport, runtime_name: str = "nodejs"
) -> Tuple[float, float]:
    """(cold ms before, cold ms after) applying the discovered AO."""
    from repro.workload.functions import nop_function

    results = []
    for level in (AOLevel.NONE, report.proposed_level()):
        node = SeussNode(
            Environment(),
            SeussConfig(ao_level=level, runtimes=(runtime_name,)),
        )
        node.initialize_sync()
        outcome = node.invoke_sync(nop_function(owner=f"eval-{level.value}"))
        assert outcome.success
        results.append(outcome.latency_ms)
    return results[0], results[1]
