"""The SEUSS method: serverless execution via unikernel snapshots.

This package is the paper's primary contribution: a compute node that
deploys serverless functions from unikernel snapshots, caches function
state in snapshot stacks, applies anticipatory optimizations, and
reclaims idle contexts under memory pressure.

The public entry point is :class:`repro.seuss.node.SeussNode`.
"""

from repro.seuss.ao import AOLevel, AOReport, apply_anticipatory_optimizations
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode
from repro.seuss.shim import ShimProcess
from repro.seuss.snapshots import SnapshotCache
from repro.seuss.uc_cache import IdleUCCache

__all__ = [
    "AOLevel",
    "AOReport",
    "IdleUCCache",
    "SeussConfig",
    "SeussNode",
    "ShimProcess",
    "SnapshotCache",
    "apply_anticipatory_optimizations",
]
