"""The idle-UC cache and OOM reclaim daemon.

After an invocation finishes, "its UC can either be destroyed or cached
for future invocations of that function on a new set of arguments" (§4)
— cached UCs serve the *hot* path.  Idle UCs are transient by design:
"UCs for function invocations are transient and can always be killed by
the system without impacting forward progress", so the OOM daemon
reclaims them (oldest first, across all functions) whenever free memory
drops below the configured threshold (§6 "Memory Management").
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.seuss.policy import CachePolicy
from repro.trace import current as _active_tracer
from repro.unikernel.context import UCState, UnikernelContext


@dataclass
class UCCacheStats:
    cached: int = 0
    hot_hits: int = 0
    reclaimed: int = 0
    dropped: int = 0


class IdleUCCache:
    """Idle unikernel contexts keyed by function, LRU across functions."""

    def __init__(
        self,
        per_function_limit: int = 512,
        policy: Optional[CachePolicy] = None,
    ) -> None:
        self._per_function_limit = per_function_limit
        # OrderedDict preserves global LRU order over function keys;
        # each key holds a FIFO of idle UCs.
        self._idle: "OrderedDict[str, Deque[UnikernelContext]]" = OrderedDict()
        self._count = 0
        #: Optional pluggable reclaim-order policy over *function keys*
        #: (``seuss/policy.py``).  ``None`` keeps the historical
        #: LRU-across-functions reclaim untouched.
        self._policy = policy
        self.stats = UCCacheStats()

    def __len__(self) -> int:
        return self._count

    def function_count(self, key: str) -> int:
        return len(self._idle.get(key, ()))

    # -- hot-path operations -------------------------------------------------
    def put(self, key: str, uc: UnikernelContext) -> bool:
        """Cache a UC for hot reuse; returns False if over the limit."""
        if uc.state is not UCState.IDLE:
            raise ValueError(f"cannot cache UC in state {uc.state}")
        bucket = self._idle.get(key)
        if bucket is None:
            bucket = deque()
            self._idle[key] = bucket
        if len(bucket) >= self._per_function_limit:
            return False
        bucket.append(uc)
        self._idle.move_to_end(key)
        self._count += 1
        if self._policy is not None:
            self._policy.on_insert(key)
        self.stats.cached += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("uc_cache.cached", key=key)
            tracer.gauge("uc_cache.idle_ucs", self._count)
        return True

    def pop(self, key: str) -> Optional[UnikernelContext]:
        """Take an idle UC for ``key``, if any (the hot path).

        Takes the *most recently idled* context (LIFO): reuse and the
        OOM daemon must consume from opposite ends, so hot hits get the
        cache-warm UC while reclaim keeps eating the oldest.
        """
        bucket = self._idle.get(key)
        if not bucket:
            return None
        uc = bucket.pop()
        self._count -= 1
        if not bucket:
            del self._idle[key]
            if self._policy is not None:
                # The function left the cache by being *used*, not
                # evicted; keep policy eviction counts clean.
                self._policy.on_remove(key, evicted=False)
        else:
            self._idle.move_to_end(key)
            if self._policy is not None:
                self._policy.on_hit(key)
        self.stats.hot_hits += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("uc_cache.hot_hit", key=key)
            tracer.gauge("uc_cache.idle_ucs", self._count)
        return uc

    # -- reclamation -----------------------------------------------------
    def reclaim_pages(self, pages_needed: int) -> int:
        """OOM-daemon hook: destroy idle UCs until enough pages free.

        Reclaims least-recently-used functions first.  Returns pages
        actually freed.
        """
        freed = 0
        while freed < pages_needed and self._idle:
            if self._policy is not None:
                key = self._policy.victim()
                if key is None or key not in self._idle:
                    key = next(iter(self._idle))
            else:
                key = next(iter(self._idle))  # least recently used function
            bucket = self._idle[key]
            uc = bucket.popleft()
            self._count -= 1
            if not bucket:
                del self._idle[key]
                if self._policy is not None:
                    self._policy.on_remove(key)
            freed += uc.destroy()
            self.stats.reclaimed += 1
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.event("uc_cache.reclaimed", key=key)
                tracer.gauge("uc_cache.idle_ucs", self._count)
        return freed

    def drop_function(self, key: str) -> int:
        """Destroy every idle UC of one function (pre-eviction hook)."""
        bucket = self._idle.pop(key, None)
        if not bucket:
            return 0
        if self._policy is not None:
            # Dropped on behalf of a snapshot-cache eviction (or a
            # clear); the owning cache's policy accounts the eviction.
            self._policy.on_remove(key, evicted=False)
        dropped = 0
        for uc in bucket:
            uc.destroy()
            dropped += 1
        self._count -= dropped
        self.stats.dropped += dropped
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("uc_cache.dropped", key=key, count=dropped)
            tracer.gauge("uc_cache.idle_ucs", self._count)
        return dropped

    def clear(self) -> int:
        """Destroy all idle UCs; returns how many were destroyed."""
        total = 0
        for key in list(self._idle):
            total += self.drop_function(key)
        return total
