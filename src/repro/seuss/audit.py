"""Node-state invariant auditing.

The integration and property tests hammer a node with arbitrary
workloads and then call :func:`audit_node`; a healthy node reports no
findings.  Auditable invariants:

* allocator category tallies sum to the allocated total;
* the snapshot cache's held-page counter matches the sum of its
  entries' footprints, every entry is alive and retained, and no entry
  is an orphan;
* every cached idle UC is in the IDLE state with a live base snapshot;
* each idle UC holds exactly one mapped network channel, and no proxy
  channel points at a destroyed UC (no channel leaks);
* snapshot parent links are acyclic and never point at deleted
  snapshots.
"""

from __future__ import annotations

from typing import List

from repro.mem.snapshot import Snapshot
from repro.unikernel.context import UCState


def audit_allocator(allocator) -> List[str]:
    issues: List[str] = []
    stats = allocator.stats()
    category_sum = sum(stats.by_category.values())
    if category_sum != stats.allocated_pages:
        issues.append(
            f"allocator: categories sum to {category_sum}, "
            f"allocated is {stats.allocated_pages}"
        )
    if stats.allocated_pages > stats.total_pages:
        issues.append("allocator: allocated exceeds total")
    if any(pages < 0 for pages in stats.by_category.values()):
        issues.append("allocator: negative category tally")
    return issues


def audit_snapshot_lineage(snapshot: Snapshot, limit: int = 64) -> List[str]:
    issues: List[str] = []
    seen = set()
    node = snapshot
    depth = 0
    while node is not None:
        if id(node) in seen:
            issues.append(f"snapshot {snapshot.name!r}: lineage cycle")
            break
        seen.add(id(node))
        if node.deleted:
            issues.append(
                f"snapshot {snapshot.name!r}: lineage contains deleted "
                f"snapshot {node.name!r}"
            )
        depth += 1
        if depth > limit:
            issues.append(f"snapshot {snapshot.name!r}: lineage deeper than {limit}")
            break
        node = node.parent
    return issues


def audit_node(node) -> List[str]:
    """Audit a :class:`~repro.seuss.node.SeussNode`; returns findings."""
    issues = audit_allocator(node.allocator)

    # -- snapshot cache ---------------------------------------------------
    cache = node.snapshot_cache
    held = 0
    for key, snapshot in cache._entries.items():
        held += snapshot.footprint_pages
        if snapshot.deleted:
            issues.append(f"snapshot cache: {key!r} entry is deleted")
        if snapshot.refcount < 1:
            issues.append(f"snapshot cache: {key!r} entry is unretained")
        issues.extend(audit_snapshot_lineage(snapshot))
    if held != cache._held_pages:
        issues.append(
            f"snapshot cache: held-page counter {cache._held_pages} "
            f"!= entries total {held}"
        )

    # -- idle UC cache ----------------------------------------------------
    idle_total = 0
    for key, bucket in node.uc_cache._idle.items():
        for uc in bucket:
            idle_total += 1
            if uc.state is not UCState.IDLE:
                issues.append(f"uc cache: {key!r} holds UC in state {uc.state}")
            if uc.space.base is None or uc.space.base.deleted:
                issues.append(f"uc cache: {key!r} UC has dead base snapshot")
    if idle_total != len(node.uc_cache):
        issues.append(
            f"uc cache: counter {len(node.uc_cache)} != bucket total {idle_total}"
        )

    # -- runtime snapshots ---------------------------------------------------
    for name, record in node.runtime_records.items():
        if record.snapshot.deleted:
            issues.append(f"runtime snapshot {name!r} deleted while registered")
        if record.snapshot.refcount < 1:
            issues.append(f"runtime snapshot {name!r} unretained")

    # -- network channels ---------------------------------------------------
    # With no invocation in flight, channels map 1:1 onto idle UCs.
    channels = node.network.active_channels
    if channels < idle_total:
        issues.append(
            f"network: {channels} active channels for {idle_total} idle UCs"
        )
    return issues
