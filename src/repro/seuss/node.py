"""The SEUSS OS compute node.

:class:`SeussNode` ties the pieces together the way Figure 2 does: at
initialization it boots one UC per supported runtime, applies the
configured anticipatory optimizations, and captures the **base runtime
snapshot** ("relatively large in memory use but there are few of them:
only one per supported interpreter").  After that every invocation is
served by :func:`repro.seuss.invoker.invoke_on_node` through one of the
cold / warm / hot paths, and the OOM daemon keeps memory pressure in
check by reclaiming idle UCs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.costs import CostBook, DEFAULT_COSTS
from repro.errors import ConfigError
from repro.faas.records import (
    FunctionSpec,
    InvocationPath,
    NodeInvocation,
    PathCounts,
)
from repro.mem.frames import FrameAllocator, node_allocator
from repro.mem.snapshot import Snapshot
from repro.mem.workingset import WorkingSetRegistry
from repro.seuss.ao import AOReport, apply_anticipatory_optimizations
from repro.seuss.config import AOLevel, SeussConfig
from repro.seuss.invoker import invoke_on_node
from repro.seuss.snapshots import SnapshotCache
from repro.seuss.uc_cache import IdleUCCache
from repro.sim import Environment, Process, Resource
from repro.trace import tracer_for
from repro.unikernel.context import UnikernelContext
from repro.unikernel.interpreters import RuntimeSpec, get_runtime
from repro.unikernel.rumprun import boot_stages
from repro.units import mb_to_pages


@dataclass
class RuntimeRecord:
    """One supported interpreter: its spec, base snapshot, and AO state."""

    runtime: RuntimeSpec
    snapshot: Snapshot
    ao_level: AOLevel
    ao_report: AOReport
    boot_ms: float


#: Per-path invocation tallies (shared shape with the Linux node).
NodeStats = PathCounts


class SeussNode:
    """A FaaS compute node running the SEUSS OS prototype."""

    def __init__(
        self,
        env: Environment,
        config: Optional[SeussConfig] = None,
        costs: CostBook = DEFAULT_COSTS,
    ) -> None:
        self.env = env
        self.config = config or SeussConfig()
        self.costs = costs
        self.allocator: FrameAllocator = node_allocator(
            self.config.memory_gb, self.config.system_reserved_mb
        )
        self.allocator.pressure_threshold_pages = mb_to_pages(
            self.config.oom_threshold_mb
        )
        self.cores = Resource(env, self.config.cores)
        #: Pluggable cache policies (one per cache so their key spaces
        #: stay disjoint); ``None`` unless the config opts in, keeping
        #: the default node's eviction paths untouched.
        self.cache_policy = None
        self.uc_policy = None
        if self.config.cache_policy is not None:
            from repro.seuss.policy import make_policy

            self.cache_policy = make_policy(
                self.config.cache_policy, clock=lambda: self.env.now
            )
            self.uc_policy = make_policy(
                self.config.cache_policy, clock=lambda: self.env.now
            )
        self.uc_cache = IdleUCCache(
            self.config.idle_ucs_per_function, policy=self.uc_policy
        )
        self.snapshot_cache = SnapshotCache(
            self.config.snapshot_cache_budget_mb,
            drop_idle=self.uc_cache.drop_function,
            policy=self.cache_policy,
        )
        # The trivial OOM daemon: reclaim idle UCs under pressure (§6).
        self.allocator.add_reclaim_hook(self.uc_cache.reclaim_pages)
        #: Content-addressed page dedup (``mem/dedup.py``); ``None``
        #: unless the config opts in, keeping the default node's
        #: capture path untouched.
        self.dedup = None
        if self.config.page_dedup or self.config.dedup_scanner:
            from repro.mem.dedup import DedupConfig, DedupDomain

            self.dedup = DedupDomain(
                self.allocator,
                DedupConfig(
                    capture=self.config.page_dedup,
                    scope=self.config.dedup_scope,
                    duplicate_fraction=self.config.dedup_duplicate_fraction,
                    scanner=self.config.dedup_scanner,
                    scan_rate_pages_per_s=(
                        self.config.dedup_scan_rate_pages_per_s
                    ),
                ),
                env=env,
            )
            self.dedup.start_scanner()
        #: Recorded first-invocation working sets, keyed like snapshots
        #: (``runtime:<name>`` for the cold path, ``fn.key`` for warm).
        self.working_sets = WorkingSetRegistry()
        # Per-core network proxies (§6 "Networking").
        from repro.net.proxy import NodeNetwork

        self.network = NodeNetwork(self.config.cores)
        self._runtimes: Dict[str, RuntimeRecord] = {}
        self.stats = NodeStats()
        self.initialized = False
        #: Optional :class:`repro.faults.FaultInjector`; installed by the
        #: cluster when a fault plan is active, ``None`` otherwise.
        self.fault_injector = None
        self.crashed = False
        self.crash_count = 0
        self.restart_count = 0
        #: Overload-control accounting: invocations cancelled mid-flight,
        #: zombies that completed after their client's deadline, and the
        #: node core time both burned for nothing.  All stay zero unless
        #: the controller propagates deadlines.
        self.cancelled_count = 0
        self.zombie_count = 0
        self.wasted_ms = 0.0
        #: Core time spent on completions somebody received (the useful
        #: complement of ``wasted_ms``; denominator of the wasted-work
        #: fraction).
        self.useful_ms = 0.0

    # -- initialization ----------------------------------------------------
    def initialize(self) -> Generator:
        """Sim process: boot runtimes and capture base snapshots.

        Run with ``env.process(node.initialize())`` then
        ``env.run(until=...)``, or via :meth:`initialize_sync`.
        """
        tracer = tracer_for(self.env)
        root = tracer.span(
            "node_init",
            at=self.env.now,
            category="node",
            runtimes=list(self.config.runtimes),
        )
        try:
            for name in self.config.runtimes:
                rt_span = root.span(
                    f"boot_runtime:{name}",
                    at=self.env.now,
                    category="boot",
                    runtime=name,
                )
                runtime = get_runtime(name)
                boot_uc = UnikernelContext(
                    self.allocator,
                    runtime,
                    name=f"boot-{name}",
                    dedup=self.dedup,
                )
                boot = boot_stages(runtime, self.costs.seuss)
                rt_span.done("boot", self.env.now, self.env.now + boot.total_ms)
                yield self.env.timeout(boot.total_ms)
                boot_uc.boot()
                ao_report = apply_anticipatory_optimizations(
                    boot_uc, self.config.ao_level, self.costs.seuss
                )
                if ao_report.time_spent_ms:
                    rt_span.done(
                        "anticipatory_optimization",
                        self.env.now,
                        self.env.now + ao_report.time_spent_ms,
                        level=self.config.ao_level.value,
                    )
                    yield self.env.timeout(ao_report.time_spent_ms)
                snapshot = boot_uc.capture_snapshot(
                    f"runtime:{name}",
                    trigger_label="driver_started",
                    content_namespace=(
                        f"runtime:{name}" if self.dedup is not None else None
                    ),
                )
                capture_ms = self.costs.seuss.snapshot_capture_ms(
                    snapshot.size_mb
                )
                rt_span.done(
                    "snapshot_capture",
                    self.env.now,
                    self.env.now + capture_ms,
                    size_mb=snapshot.size_mb,
                )
                yield self.env.timeout(capture_ms)
                # The node holds the runtime snapshot for its lifetime.
                snapshot.retain()
                self._runtimes[name] = RuntimeRecord(
                    runtime=runtime,
                    snapshot=snapshot,
                    ao_level=self.config.ao_level,
                    ao_report=ao_report,
                    boot_ms=boot.total_ms,
                )
                boot_uc.destroy()
                rt_span.finish(at=self.env.now)
            self.initialized = True
        finally:
            root.finish(at=self.env.now)

    def initialize_sync(self) -> None:
        """Initialize on a fresh environment, running it to completion."""
        process = self.env.process(self.initialize())
        self.env.run(until=process)

    # -- runtime lookups ----------------------------------------------------
    def runtime_record(self, name: str) -> RuntimeRecord:
        try:
            return self._runtimes[name]
        except KeyError:
            if not self.initialized:
                raise ConfigError(
                    "node not initialized; call initialize_sync() first"
                ) from None
            raise ConfigError(
                f"runtime {name!r} not supported by this node "
                f"(have {sorted(self._runtimes)})"
            ) from None

    @property
    def runtime_records(self) -> Dict[str, RuntimeRecord]:
        return dict(self._runtimes)

    # -- crash / restart ---------------------------------------------------
    def crash(self) -> None:
        """Power-fail the node.

        All volatile state dies with it: idle UCs are gone, and the
        in-memory snapshot cache is lost (best-effort — entries pinned
        by in-flight invocations survive until those drain, like pages
        a crashing kernel had already DMA'd out).  Invocations routed
        here while down fail fast, which is what the controller's
        retry/breaker machinery is built to absorb.

        Working-set manifests deliberately survive: like REAP's
        per-snapshot working-set files they live with the snapshot
        store, not in volatile memory, so a restarted node prefetches
        from its old recordings.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.uc_cache.clear()
        self.snapshot_cache.clear()

    def restart(self) -> None:
        """Bring a crashed node back; caches rebuild cold from here."""
        if not self.crashed:
            return
        self.crashed = False
        self.restart_count += 1

    def crash_for(self, downtime_ms: float) -> Process:
        """Crash now and schedule the restart ``downtime_ms`` later."""

        def _reboot() -> Generator:
            yield self.env.timeout(downtime_ms)
            self.restart()

        self.crash()
        return self.env.process(_reboot())

    # -- invocation ------------------------------------------------------
    def invoke(
        self,
        fn: FunctionSpec,
        deadline_ms: Optional[float] = None,
        cancel_expired: bool = False,
    ) -> Process:
        """Start servicing an invocation; returns its sim process.

        The process's value is a
        :class:`~repro.seuss.invoker.NodeInvocation`.  ``deadline_ms``
        (absolute sim time) propagates the client's deadline so the
        invoker can account zombie completions and — with
        ``cancel_expired`` — abort between stages once it passes.
        """
        if not self.initialized:
            raise ConfigError("node not initialized; call initialize_sync() first")
        injector = self.fault_injector
        if (
            injector is not None
            and not self.crashed
            and injector.node_crashes()
        ):
            self.crash_for(injector.plan.node_restart_ms)
        if self.crashed:
            return self.env.process(self._crashed_invocation(fn))
        return self.env.process(
            invoke_on_node(
                self, fn, deadline_ms=deadline_ms, cancel_expired=cancel_expired
            )
        )

    def _crashed_invocation(self, fn: FunctionSpec) -> Generator:
        """A dead node's peer sees an immediate connection reset."""
        self.stats.errors += 1
        yield self.env.timeout(0.0)
        return NodeInvocation(
            path=InvocationPath.ERROR,
            success=False,
            latency_ms=0.0,
            error="node crashed",
            function_key=fn.key,
        )

    def invoke_sync(self, fn: FunctionSpec) -> NodeInvocation:
        """Invoke and run the environment until completion (micro tests)."""
        process = self.invoke(fn)
        return self.env.run(until=process)

    # -- idle-instance deployment (Table 3 density / creation tests) --------
    def deploy_idle_instance(self, runtime_name: str = "nodejs") -> Generator:
        """Sim process: deploy one UC to its listening state and park it.

        This is the Table 3 workload: a Node.js environment "blocked on
        a port awaiting a new connection (no code has been imported
        yet)".  Returns the deployed :class:`UnikernelContext`.
        """
        record = self.runtime_record(runtime_name)
        core = self.cores.request()
        yield core
        try:
            uc = UnikernelContext(
                self.allocator,
                record.runtime,
                base=record.snapshot,
                dedup=self.dedup,
            )
            yield self.env.timeout(self.costs.seuss.uc_create_ms)
            uc.start_listening()
        finally:
            self.cores.release(core)
        return uc

    # -- distributed cache support (§9) --------------------------------------
    def install_snapshot(
        self, fn_key: str, pages, runtime_name: str = "nodejs"
    ) -> Snapshot:
        """Install a function-snapshot diff received from a peer node.

        Because all nodes of a cluster share identical runtime images
        and virtual layouts, a peer's diff pages are directly valid
        here: the replica is re-parented onto this node's own runtime
        snapshot ("cloned and deployed across machines with similar
        hardware profiles", §9).  Returns the cached snapshot.
        """
        from repro.mem.snapshot import CpuState

        record = self.runtime_record(runtime_name)
        snapshot = Snapshot(
            name=f"fn:{fn_key}:replica",
            pages=pages,
            allocator=self.allocator,
            parent=record.snapshot,
            cpu=CpuState(trigger_label="replica_installed"),
            dedup=self.dedup,
            content_namespace=(
                self.dedup.namespace(fn_key, runtime_name)
                if self.dedup is not None
                else None
            ),
        )
        if not self.snapshot_cache.put(fn_key, snapshot):
            snapshot.delete()  # raced with a local cold start
            return self.snapshot_cache.get(fn_key)
        return snapshot

    # -- introspection --------------------------------------------------
    def memory_stats(self):
        return self.allocator.stats()

    def overcommit_ratio(self) -> float:
        """Mapped virtual memory over physical memory actually held.

        COW sharing makes memory "highly overcommitted" (§6 "Memory
        Management"): every idle UC maps the full runtime image while
        privately holding only a couple of MB.  The OOM daemon is what
        makes that safe.
        """
        mapped = 0
        for bucket in self.uc_cache._idle.values():
            for uc in bucket:
                mapped += uc.space.mapped_pages().page_count
        held = (
            self.allocator.category_pages("uc_private")
            + self.allocator.category_pages("uc_page_table")
        )
        if held == 0:
            return 1.0
        return mapped / held

    def __repr__(self) -> str:
        return (
            f"SeussNode(runtimes={sorted(self._runtimes)}, "
            f"snapshots={len(self.snapshot_cache)}, "
            f"idle_ucs={len(self.uc_cache)}, stats={self.stats})"
        )
