"""Anticipatory optimization (AO) passes.

AO is "the act of intentionally running computation prior to capturing a
snapshot with the goal of removing redundant space and time usage from
subsequent execution" (§3).  The prototype applies two passes before
capturing the base runtime snapshot:

* **network** — send an HTTP request through the unikernel's stack, so
  every descendant UC finds the network path pre-warmed;
* **interpreter** — run a dummy script through the interpreter, warming
  JIT/inline-cache state.

Mechanically each pass writes the corresponding first-use extent into
the (not yet captured) base image; the extent then travels inside the
base snapshot, so descendants neither re-execute the path (time) nor
re-write the pages into their own diffs (space).  That is the whole
trick — and why AO simultaneously cuts latency (Table 2) and halves the
function-snapshot footprint (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.costs import SeussCostModel
from repro.seuss.config import AOLevel
from repro.unikernel.context import UnikernelContext
from repro.units import pages_to_mb


@dataclass
class AOReport:
    """What the AO passes did to the base image."""

    level: AOLevel
    pages_added: int = 0
    time_spent_ms: float = 0.0
    passes: Dict[str, int] = field(default_factory=dict)

    @property
    def mb_added(self) -> float:
        return pages_to_mb(self.pages_added)


def apply_anticipatory_optimizations(
    uc: UnikernelContext, level: AOLevel, costs: SeussCostModel
) -> AOReport:
    """Run the configured AO passes on a booted (uncaptured) UC.

    Returns a report of the pages pre-written into the base image and
    the one-time wall-clock cost (paid once per runtime per node, at
    initialization — never on an invocation path).
    """
    report = AOReport(level=level)
    if level.network:
        result = uc.warm_network()
        report.pages_added += result.pages_written
        report.time_spent_ms += costs.network_first_use_ms
        report.passes["network"] = result.pages_written
    if level.interpreter:
        result = uc.warm_interpreter()
        report.pages_added += result.pages_written
        # Importing, compiling and running the dummy script.
        report.time_spent_ms += (
            costs.interpreter_first_use_ms + costs.import_compile_base_ms
        )
        report.passes["interpreter"] = result.pages_written
    return report
