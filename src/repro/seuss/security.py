"""Security-model accounting (§5).

SEUSS isolates UCs with hardware protection rings and narrows the
guest/host interface to Solo5's 12 hypercalls, versus the 300+ Linux
syscalls a Docker container's default seccomp profile exposes.  Snapshot
sharing is restricted to read-only pages, and — unlike KSM — sharing is
never applied retroactively, which removes deduplication side channels.

This module packages those claims as inspectable data so examples and
tests can audit them against the live mechanisms (the
:class:`~repro.unikernel.solo5.HypercallInterface` boundary and the
COW semantics of :class:`~repro.mem.AddressSpace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.unikernel.solo5 import DOCKER_SECCOMP_SYSCALL_COUNT, SOLO5_HYPERCALLS


@dataclass(frozen=True)
class IsolationProfile:
    """The attack-surface profile of one isolation mechanism."""

    mechanism: str
    domain_interface_calls: int
    hardware_enforced: bool
    sharing: str
    retroactive_dedup: bool

    @property
    def narrow_interface(self) -> bool:
        """A domain interface small enough to audit call-by-call."""
        return self.domain_interface_calls <= 32


SEUSS_PROFILE = IsolationProfile(
    mechanism="SEUSS unikernel context (ring 3 over ukvm hypercalls)",
    domain_interface_calls=len(SOLO5_HYPERCALLS),
    hardware_enforced=True,
    sharing="read-only pages within the function's own snapshot lineage",
    retroactive_dedup=False,
)

DOCKER_PROFILE = IsolationProfile(
    mechanism="Docker container (namespaces + default seccomp)",
    domain_interface_calls=DOCKER_SECCOMP_SYSCALL_COUNT,
    hardware_enforced=False,
    sharing="host page cache and KSM (retroactive, content-based)",
    retroactive_dedup=True,
)


def interface_comparison() -> Tuple[IsolationProfile, IsolationProfile]:
    """(SEUSS, Docker) profiles — the §5 comparison."""
    return SEUSS_PROFILE, DOCKER_PROFILE


@dataclass(frozen=True)
class DedupAudit:
    """Security verdict on one page-dedup policy (§5).

    The known dedup side channel needs two ingredients: pages merged
    *across trust domains* and an attacker-observable signal (CoW
    write-fault latency, or merge-arrival timing under a retroactive
    scanner).  Lineage- and tenant-scoped merging never crosses a
    trust boundary, so the channel does not exist there — exactly the
    paper's argument for confining sharing to a function's own lineage.
    """

    scope: str
    retroactive: bool
    cross_tenant: bool
    side_channel: bool
    rationale: str


def audit_dedup(scope: str, retroactive: bool = False) -> DedupAudit:
    """Audit a dedup configuration for the §5 side channel.

    ``scope`` is one of ``lineage`` / ``tenant`` / ``global`` (the
    :mod:`repro.mem.dedup` merge scopes).  Only global, cross-tenant
    merging flags the side channel; ``retroactive`` additionally marks
    the KSM-style timing signal (merge arrival is observable), which is
    noted in the rationale but is only exploitable across tenants.
    """
    if scope not in ("lineage", "tenant", "global"):
        raise ValueError(
            f"scope must be lineage|tenant|global, got {scope!r}"
        )
    cross_tenant = scope == "global"
    if cross_tenant:
        rationale = (
            "content-based merging across tenants: a tenant can probe "
            "CoW write-fault latency to learn whether another tenant "
            "holds a given page (the KSM dedup side channel)"
            + (
                "; retroactive merge arrival adds a timing signal"
                if retroactive
                else ""
            )
        )
    elif scope == "tenant":
        rationale = (
            "merging confined to one tenant's own functions: no page is "
            "ever shared across a trust boundary, so the dedup side "
            "channel has no victim"
        )
    else:
        rationale = (
            "merging confined to a function's own snapshot lineage — "
            "the paper's policy: sharing established at snapshot time, "
            "never across functions or tenants"
        )
    return DedupAudit(
        scope=scope,
        retroactive=retroactive,
        cross_tenant=cross_tenant,
        side_channel=cross_tenant,
        rationale=rationale,
    )


def attack_surface_reduction_factor() -> float:
    """How many times smaller the SEUSS domain interface is."""
    return (
        DOCKER_PROFILE.domain_interface_calls
        / SEUSS_PROFILE.domain_interface_calls
    )
