"""The OpenWhisk shim process.

The prototype keeps OpenWhisk unmodified by running a C++ shim on Linux
that reads requests from the Kafka message bus and forwards them over a
single TCP connection to the SEUSS OS VM (§6 "FaaS Platform
Integration").  That design costs two things the evaluation calls out:

* an extra network hop adding ~8 ms to every round trip — why Linux
  wins by 21% on the hot-dominated, small-set-size trials of Figure 4;
* serialization on the shim's single TCP connection — the bottleneck
  that caps UC creation at 128.6/s in Table 3.

:class:`ShimProcess` models both: a capacity-1 resource with a fixed
per-request service time, plus a propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.costs import PlatformCostModel
from repro.sim import Environment, Resource


@dataclass
class ShimStats:
    forwarded: int = 0
    busy_ms: float = 0.0


class ShimProcess:
    """Kafka-to-SEUSS-OS forwarding shim with one TCP connection."""

    def __init__(self, env: Environment, costs: PlatformCostModel) -> None:
        self.env = env
        self.costs = costs
        #: The single TCP connection between the shim and the VM.
        self.connection = Resource(env, capacity=1)
        self.stats = ShimStats()

    @property
    def propagation_ms(self) -> float:
        """Per-request delay not spent holding the connection."""
        return max(0.0, self.costs.shim_rtt_ms - self.costs.shim_service_ms)

    def forward(self) -> Generator:
        """Sim process: push one request through the shim hop."""
        request = self.connection.request()
        yield request
        try:
            yield self.env.timeout(self.costs.shim_service_ms)
        finally:
            self.connection.release(request)
        yield self.env.timeout(self.propagation_ms)
        self.stats.forwarded += 1
        self.stats.busy_ms += self.costs.shim_service_ms

    @property
    def max_rate_per_s(self) -> float:
        """The serialization-imposed ceiling on request rate."""
        return 1000.0 / self.costs.shim_service_ms
