"""Per-core network proxies with port-keyed NAT.

"A per-core network proxy maintains mappings for both the internal and
external networks for each unikernel instance active on that core.
Incoming traffic is screened, and the traffic destined for unikernels is
sent through an additional translation process to determine the worker
core where the UC is resident.  TCP destination ports act as the unique
key for mapping packets to an active UC."  UDP and IPv6 port mapping are
unsupported (as in the prototype), and only outgoing TCP connections may
be initiated from within a unikernel.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.errors import NetworkError

#: Ephemeral port range used for UC channel mappings.
PORT_RANGE_START = 32_768
PORT_RANGE_END = 61_000

_channel_ids = itertools.count(1)


class PortAllocator:
    """Ephemeral TCP ports for one proxy.

    Ports released on channel teardown are recycled FIFO (oldest
    release reused first, spreading reuse across the range like the
    kernel's TIME_WAIT avoidance), so sustained channel churn — far
    more cumulative channels than the range holds — never exhausts the
    allocator, while a port is never handed out twice concurrently.
    """

    def __init__(
        self, start: int = PORT_RANGE_START, end: int = PORT_RANGE_END
    ) -> None:
        if not 0 < start < end <= 65_536:
            raise ValueError(f"invalid port range [{start}, {end})")
        self._start = start
        self._end = end
        self._next = start
        self._free: Deque[int] = deque()
        self._in_use: set = set()
        self.recycled = 0

    @property
    def in_use(self) -> int:
        return len(self._in_use)

    @property
    def capacity(self) -> int:
        return self._end - self._start

    @property
    def available(self) -> int:
        return self.capacity - len(self._in_use)

    def allocate(self) -> int:
        if self._free:
            port = self._free.popleft()
            self.recycled += 1
        elif self._next < self._end:
            port = self._next
            self._next += 1
        else:
            raise NetworkError("proxy port range exhausted")
        self._in_use.add(port)
        return port

    def release(self, port: int) -> None:
        if port not in self._in_use:
            raise NetworkError(f"releasing unmapped port {port}")
        self._in_use.remove(port)
        self._free.append(port)


@dataclass
class Channel:
    """One mapped TCP flow between SEUSS OS and a UC."""

    port: int
    uc_id: int
    core: int
    channel_id: int = field(default_factory=lambda: next(_channel_ids))
    bytes_in: int = 0
    bytes_out: int = 0
    closed: bool = False


@dataclass
class ProxyStats:
    opened: int = 0
    closed: int = 0
    screened_drops: int = 0
    masqueraded_flows: int = 0


class NetworkProxy:
    """The per-core proxy: port-keyed internal + external NAT."""

    def __init__(self, core: int) -> None:
        self.core = core
        self._ports = PortAllocator()
        self._channels: Dict[int, Channel] = {}
        self.stats = ProxyStats()

    @property
    def active_channels(self) -> int:
        return len(self._channels)

    def open_channel(self, uc_id: int, protocol: str = "tcp") -> Channel:
        """Map a new flow to a UC; TCP only, as in the prototype."""
        if protocol != "tcp":
            raise NetworkError(
                f"port mapping for {protocol!r} is not supported (TCP only)"
            )
        port = self._ports.allocate()
        channel = Channel(port=port, uc_id=uc_id, core=self.core)
        self._channels[port] = channel
        self.stats.opened += 1
        return channel

    def has_port(self, port: int) -> bool:
        return port in self._channels

    def route(self, port: int) -> Channel:
        """Translate an incoming packet's destination port to its UC."""
        channel = self._channels.get(port)
        if channel is None:
            # Screening: traffic with no UC mapping is dropped.
            self.stats.screened_drops += 1
            raise NetworkError(f"no UC mapped on port {port}")
        return channel

    def masquerade_outgoing(self, channel: Channel, nbytes: int = 0) -> None:
        """Rewrite an outgoing guest flow onto the host address."""
        if channel.closed:
            raise NetworkError(f"channel {channel.channel_id} is closed")
        channel.bytes_out += nbytes
        self.stats.masqueraded_flows += 1

    def deliver_incoming(self, port: int, nbytes: int = 0) -> Channel:
        channel = self.route(port)
        channel.bytes_in += nbytes
        return channel

    def close_channel(self, channel: Channel) -> None:
        if channel.closed:
            return
        channel.closed = True
        del self._channels[channel.port]
        self._ports.release(channel.port)
        self.stats.closed += 1


class NodeNetwork:
    """All per-core proxies of one SEUSS OS node."""

    def __init__(self, cores: int) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.proxies = [NetworkProxy(core) for core in range(cores)]

    def proxy_for(self, core: int) -> NetworkProxy:
        return self.proxies[core % len(self.proxies)]

    def connect_uc(self, uc) -> Channel:
        """Open the control channel for a UC on its resident core's proxy.

        The channel is torn down automatically when the UC is destroyed.
        """
        proxy = self.proxy_for(uc.uc_id)
        channel = proxy.open_channel(uc.uc_id)
        uc.add_destroy_hook(lambda: proxy.close_channel(channel))
        return channel

    @property
    def active_channels(self) -> int:
        return sum(proxy.active_channels for proxy in self.proxies)

    def locate(self, port: int) -> Optional[Channel]:
        """Find which core's proxy owns a port (the translation step)."""
        for proxy in self.proxies:
            if proxy.has_port(port):
                return proxy.route(port)
        return None
