"""The SEUSS OS network layer (§6 "Networking").

Every UC is configured with an identical IP and MAC so snapshots can be
redeployed anywhere; a per-core *network proxy* therefore has to
disambiguate traffic by TCP destination port, masquerading flows in and
out of the UCs.  The internal network carries the invocation protocol
(arguments in, results out); the external proxy masquerades outgoing
connections initiated from within guest functions.
"""

from repro.net.proxy import Channel, NetworkProxy, NodeNetwork, PortAllocator

__all__ = ["Channel", "NetworkProxy", "NodeNetwork", "PortAllocator"]
