"""Units and conversions used throughout the reproduction.

* Simulated time is in **milliseconds** (the unit the paper reports).
* Memory is accounted in 4 KiB **pages** (the x86 granularity SEUSS OS
  tracks with dirty bits); helpers convert to/from MB and GB, where
  the paper's "MB" means MiB.
"""

from __future__ import annotations

#: x86 small-page size in bytes.
PAGE_SIZE = 4096

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Pages per MiB (= 256).
PAGES_PER_MB = MIB // PAGE_SIZE

# -- time helpers (everything is stored in ms) -------------------------


def seconds(value: float) -> float:
    """Convert seconds to simulation time (ms)."""
    return value * 1000.0


def minutes(value: float) -> float:
    """Convert minutes to simulation time (ms)."""
    return value * 60_000.0


def microseconds(value: float) -> float:
    """Convert microseconds to simulation time (ms)."""
    return value / 1000.0


def ms_to_seconds(value: float) -> float:
    return value / 1000.0


# -- memory helpers -----------------------------------------------------


def mb_to_pages(mb: float) -> int:
    """Convert MiB to a whole number of 4 KiB pages (rounded)."""
    return int(round(mb * PAGES_PER_MB))


def gb_to_pages(gb: float) -> int:
    """Convert GiB to a whole number of 4 KiB pages (rounded)."""
    return int(round(gb * GIB / PAGE_SIZE))


def pages_to_mb(pages: int) -> float:
    """Convert a page count to MiB."""
    return pages / PAGES_PER_MB


def pages_to_bytes(pages: int) -> int:
    return pages * PAGE_SIZE
