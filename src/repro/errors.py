"""Exception hierarchy for the SEUSS reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfMemoryError(ReproError):
    """The simulated node's physical memory is exhausted.

    On the SEUSS node this is normally prevented by the OOM reclaim
    daemon (idle UCs are transient and reclaimable); on the Linux node it
    bounds cache density.
    """


class SnapshotError(ReproError):
    """Invalid snapshot operation (e.g. deleting a depended-on snapshot)."""


class SnapshotCorruptionError(SnapshotError):
    """A snapshot failed content-checksum validation.

    Raised when a snapshot is loaded for deployment and its stored
    checksum no longer matches its content (a corrupted capture, a
    bit-flip at rest, or an injected fault).  The platform's response is
    quarantine-and-rebuild: the corrupted entry is removed from the
    snapshot cache and the invocation falls back to the cold path, so a
    bad snapshot costs exactly one cold start — never an outage.
    """


class FaultInjectionError(ReproError):
    """The fault-injection subsystem was misconfigured or misused.

    Raised for invalid :class:`~repro.faults.FaultPlan` parameters
    (probabilities outside [0, 1], negative delays) — never for the
    injected faults themselves, which surface through the component
    they disrupt (failed invocations, corrupted snapshots, delayed
    messages).
    """


class IsolationError(ReproError):
    """A guest attempted an operation outside its protection domain."""


class NetworkError(ReproError):
    """A simulated network operation failed (drop, timeout, no route)."""


class InvocationError(ReproError):
    """A function invocation failed platform-side (timeout, overload)."""


class DeadlineExceededError(InvocationError):
    """A request's deadline expired before useful work could complete.

    Raised (or carried as an interrupt cause / result error) by the
    overload control plane: an already-expired request fails fast at the
    controller without ever touching a node, and in-flight node work is
    cancelled between stages once its propagated deadline passes —
    releasing the core, UC, and memory instead of running as a zombie.
    """


class QueueFullError(InvocationError):
    """A node's bounded admission queue rejected (shed) a request.

    Which request gets shed depends on the configured
    :class:`~repro.faas.overload.ShedPolicy`: the incoming one
    (reject-newest), the oldest still-queued one (reject-oldest), or
    queued work whose deadline has already expired (drop-expired).
    """


class RetryBudgetExhaustedError(InvocationError):
    """The cluster-wide retry token bucket denied another retry.

    Per-request backoff limits bound how hard *one* client hammers the
    platform; the retry budget bounds the *aggregate* retry rate (e.g.
    retries <= 10% of admitted requests) so that correlated failures
    during overload cannot metastasize into a retry storm.
    """


class CircuitOpenError(InvocationError):
    """A request was rejected because no routable node's circuit is closed.

    The cluster's per-node circuit breakers open after consecutive
    failures and reject traffic until a cooldown elapses
    (closed → open → half-open); while every node is open or draining,
    the controller fails fast with this error instead of queueing work
    onto a node that is known to be down.
    """


class ConfigError(ReproError):
    """Invalid experiment or component configuration."""


class ExperimentLookupError(ConfigError):
    """An experiment id or scale profile is not in the registry.

    Raised by :class:`repro.experiments.base.ExperimentRegistry` lookups
    and by profile resolution on an :class:`ExperimentSpec`; the message
    always names the known alternatives so CLI callers can surface them.
    """
