"""Exception hierarchy for the SEUSS reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfMemoryError(ReproError):
    """The simulated node's physical memory is exhausted.

    On the SEUSS node this is normally prevented by the OOM reclaim
    daemon (idle UCs are transient and reclaimable); on the Linux node it
    bounds cache density.
    """


class SnapshotError(ReproError):
    """Invalid snapshot operation (e.g. deleting a depended-on snapshot)."""


class IsolationError(ReproError):
    """A guest attempted an operation outside its protection domain."""


class NetworkError(ReproError):
    """A simulated network operation failed (drop, timeout, no route)."""


class InvocationError(ReproError):
    """A function invocation failed platform-side (timeout, overload)."""


class ConfigError(ReproError):
    """Invalid experiment or component configuration."""
