"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in
offline environments whose setuptools predates bundled wheel support
(``pip install -e . --no-use-pep517 --no-build-isolation``).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
