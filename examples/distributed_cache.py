#!/usr/bin/env python3
"""Distributed SEUSS (§9): a replicated global snapshot cache.

The paper's future-work section ("DR-SEUSS") observes that snapshots
are read-only and deploy-anywhere, so they can be cloned across
machines.  This example runs a 4-node cluster and shows the deployment
path that falls out: **remote-warm** — ship a ~2 MB diff over 10 GbE
instead of re-importing code — under the three transfer strategies the
paper cites (full copy, on-demand paging, VM state coloring).

Run:  python examples/distributed_cache.py
"""

from repro import Environment, nop_function
from repro.distributed import (
    DistributedSeussCluster,
    SchedulingPolicy,
    TransferStrategy,
)


def demo_strategies() -> None:
    print("remote-warm deployment vs transfer strategy (2 MB diff):")
    print(f"{'strategy':<12}{'cold ms':>9}{'remote-warm ms':>16}{'saved':>8}")
    for strategy in TransferStrategy:
        cluster = DistributedSeussCluster(
            Environment(), node_count=2, strategy=strategy
        )
        fn = nop_function(owner=f"demo-{strategy.value}")
        cold = cluster.invoke_sync(fn)
        cluster.nodes[cold.node_id].uc_cache.drop_function(fn.key)
        cluster._in_flight[cold.node_id] = 8  # steer the scheduler away
        remote = cluster.invoke_sync(fn)
        assert remote.path == "remote_warm"
        saved = cold.latency_ms - remote.latency_ms
        print(
            f"{strategy.value:<12}{cold.latency_ms:>9.2f}"
            f"{remote.latency_ms:>16.2f}{saved:>7.2f}ms"
        )
    print()


def demo_replication() -> None:
    cluster = DistributedSeussCluster(
        Environment(),
        node_count=4,
        policy=SchedulingPolicy.LEAST_LOADED,
        strategy=TransferStrategy.COLORED,
    )
    fn = nop_function(owner="popular")
    # A popular function invoked under shifting load gets replicated
    # onto every node it lands on — at diff cost, never image cost.
    for round_number in range(8):
        result = cluster.invoke_sync(fn)
        cluster.nodes[result.node_id].uc_cache.drop_function(fn.key)
        cluster._in_flight[result.node_id] += 2  # simulate lingering load
        print(
            f"  round {round_number}: node {result.node_id} via "
            f"{result.path:<12} ({result.latency_ms:6.2f} ms, "
            f"{result.transferred_mb:.2f} MB moved)"
        )
    print(
        f"\nreplicas of {fn.key!r}: {cluster.replica_count(fn.key)} of "
        f"{cluster.node_count} nodes; wire total "
        f"{cluster.interconnect.stats.mb_moved:.1f} MB "
        f"(the 114.5 MB runtime image never moves — every node already "
        "has it)"
    )


def main() -> None:
    demo_strategies()
    print("replicating a popular function across a 4-node cluster:")
    demo_replication()


if __name__ == "__main__":
    main()
