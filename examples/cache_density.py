#!/usr/bin/env python3
"""Cache density: how many idle Node.js environments fit on one node?

Reproduces the Table 3 comparison at reduced scale: deploy idle runtime
environments under each isolation method until a fixed memory budget is
exhausted, then extrapolate to the paper's 88 GB node.  Shows *why* the
SEUSS number is 54,000 while Docker's is 3,000: an idle UC's only
private memory is its page-table copy plus the pages it dirtied after
deploy — everything else is shared through the snapshot.

Run:  python examples/cache_density.py
"""

from repro import Environment
from repro.errors import OutOfMemoryError
from repro.linuxnode.config import LinuxNodeConfig
from repro.linuxnode.instances import InstanceKind
from repro.linuxnode.node import LinuxNode
from repro.seuss.config import SeussConfig
from repro.seuss.node import SeussNode

#: Shrunken node so the sweep finishes in seconds.
NODE_GB = 8.0
PAPER_NODE_GB = 88.0


def linux_density(kind: InstanceKind) -> tuple:
    env = Environment()
    node = LinuxNode(
        env, config=LinuxNodeConfig(memory_gb=NODE_GB, system_reserved_mb=256)
    )
    count = 0
    while True:
        try:
            env.run(until=env.process(node.deploy_instance(kind)))
        except OutOfMemoryError:
            break
        count += 1
    per_mb = kind.footprint_mb(node.costs.linux)
    return count, per_mb


def seuss_density() -> tuple:
    env = Environment()
    node = SeussNode(
        env, SeussConfig(memory_gb=NODE_GB, system_reserved_mb=256)
    )
    node.initialize_sync()
    deployed = []
    while True:
        try:
            deployed.append(env.run(until=env.process(node.deploy_idle_instance())))
        except OutOfMemoryError:
            break
    per_mb = deployed[0].resident_mb if deployed else 0.0
    return len(deployed), per_mb


def main() -> None:
    print(f"idle Node.js environments on a {NODE_GB:.0f} GB node:")
    print(f"{'method':<24}{'count':>8}{'MB each':>10}{'paper-scale est.':>18}")
    scale = PAPER_NODE_GB / NODE_GB
    rows = [
        ("Firecracker microVM", *linux_density(InstanceKind.MICROVM)),
        ("Docker container", *linux_density(InstanceKind.CONTAINER)),
        ("Linux process", *linux_density(InstanceKind.PROCESS)),
        ("SEUSS UC", *seuss_density()),
    ]
    for label, count, per_mb in rows:
        print(f"{label:<24}{count:>8}{per_mb:>10.2f}{int(count * scale):>18,}")
    print()
    print(
        "An idle SEUSS UC privately owns only its shallow page-table copy\n"
        "and the pages the driver dirtied re-entering its listen loop;\n"
        "the 114.5 MB runtime image is shared read-only by every instance."
    )


if __name__ == "__main__":
    main()
