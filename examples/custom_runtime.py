#!/usr/bin/env python3
"""Adding a language runtime: snapshots are black boxes.

The paper argues that snapshot-based caching is *general*: unlike
fork-based systems, it needs no cooperation from the interpreter (§3,
§8 — Node.js famously does not support POSIX fork).  Adding a runtime
to this library is one :class:`RuntimeSpec` describing how the
interpreter uses memory and time; the snapshot machinery is untouched.

This example registers a fictional "quickjs" runtime, builds a node
that serves it alongside Node.js and Python, and invokes a function on
each.

Run:  python examples/custom_runtime.py
"""

from repro import Environment, FunctionSpec, SeussConfig, SeussNode
from repro.unikernel.interpreters import (
    RuntimeSpec,
    register_runtime,
    registered_runtimes,
)

#: A small embeddable JavaScript engine: quick to boot, light in memory,
#: and — like Node.js — without fork support.
QUICKJS = RuntimeSpec(
    name="quickjs",
    language="javascript",
    supports_fork=False,
    interpreter_init_ms=90.0,
    kernel_pages=7_680,  # same Rumprun base
    interpreter_pages=1_536,  # 6 MB engine init
    driver_pages=256,  # 1 MB driver
    ao_network_pages=486,
    ao_interpreter_pages=64,
    ao_dummy_pages=128,
    listen_pages=128,
    conn_pages=51,
    args_pages=8,
    import_base_pages=48,
    import_pages_per_kb=8,
)


def main() -> None:
    register_runtime(QUICKJS)
    print(f"registered runtimes: {', '.join(registered_runtimes())}")

    env = Environment()
    node = SeussNode(
        env, SeussConfig(runtimes=("nodejs", "python", "quickjs"))
    )
    node.initialize_sync()
    print(f"node initialized in {env.now:.0f} ms (three runtimes)\n")

    print(f"{'runtime':<10}{'base snapshot MB':>18}{'cold ms':>9}{'hot ms':>8}")
    for runtime in ("nodejs", "python", "quickjs"):
        record = node.runtime_record(runtime)
        fn = FunctionSpec(name="nop", owner=f"demo-{runtime}", runtime=runtime)
        cold = node.invoke_sync(fn)
        hot = node.invoke_sync(fn)
        print(
            f"{runtime:<10}{record.snapshot.size_mb:>18.1f}"
            f"{cold.latency_ms:>9.2f}{hot.latency_ms:>8.2f}"
        )

    print(
        "\nEach runtime costs one base snapshot ('relatively large in\n"
        "memory use but there are few of them: only one per supported\n"
        "interpreter'); the deployment paths and all sharing machinery\n"
        "are runtime-agnostic."
    )


if __name__ == "__main__":
    main()
