#!/usr/bin/env python3
"""Security model (§5): narrow interfaces and lineage-bounded sharing.

Audits the two mechanisms the paper's security argument rests on, against
the live simulation objects:

1. the domain interface between an untrusted UC and the trusted kernel
   is 12 hypercalls (vs 300+ syscalls for a Docker container), and any
   call outside it is rejected at the boundary;
2. snapshot sharing is read-only and confined to a function's own
   lineage — a write from one UC can never be observed by another.

Run:  python examples/security_audit.py
"""

from repro import Environment, IsolationError, SeussNode, nop_function
from repro.seuss.security import (
    attack_surface_reduction_factor,
    interface_comparison,
)


def main() -> None:
    seuss, docker = interface_comparison()
    print("domain interfaces:")
    for profile in (seuss, docker):
        print(f"  {profile.mechanism}")
        print(
            f"    calls: {profile.domain_interface_calls:>4}   "
            f"hardware-enforced: {profile.hardware_enforced}   "
            f"retroactive dedup: {profile.retroactive_dedup}"
        )
    print(
        f"  -> SEUSS's interface is {attack_surface_reduction_factor():.0f}x "
        "smaller\n"
    )

    env = Environment()
    node = SeussNode(env)
    node.initialize_sync()
    fn = nop_function(owner="tenant-a")
    node.invoke_sync(fn)
    uc = node.uc_cache.pop(fn.key)

    print("boundary enforcement:")
    print(f"  hypercalls used by this UC so far: {uc.hypercalls.counts}")
    try:
        uc.hypercalls.invoke("ptrace")  # a syscall, not a hypercall
    except IsolationError as exc:
        print(f"  ptrace rejected at the boundary: {exc}\n")

    print("sharing is lineage-bounded and copy-on-write:")
    base = node.runtime_record("nodejs").snapshot
    other = nop_function(owner="tenant-b")
    node.invoke_sync(other)
    other_uc = node.uc_cache.pop(other.key)
    before = other_uc.space.private_pages
    # Tenant A scribbles over the shared interpreter image...
    region = uc.layout.region("interpreter")
    write = uc.space.write(region.start, 64)
    print(f"  tenant-a wrote 64 shared pages -> {write.pages_copied} COW copies")
    # ...and tenant B sees nothing: its private set is unchanged and the
    # base snapshot still owns its original pages.
    assert other_uc.space.private_pages == before
    assert base.page_count == base.stack()[-1].page_count
    print("  tenant-b's address space is untouched; the snapshot is immutable")
    print(
        "\nWrites always land on pages dedicated exclusively to the writing\n"
        "UC; runtime snapshots are captured before any function-specific\n"
        "state exists, so different users may share them safely."
    )


if __name__ == "__main__":
    main()
