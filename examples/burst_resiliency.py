#!/usr/bin/env python3
"""Burst resiliency: the paper's Figures 6-8 scenario, side by side.

A rate-throttled background stream of IO-bound functions runs while
volleys of concurrent requests to brand-new CPU-bound functions slam the
platform at a fixed period.  The Linux/Docker node survives only as long
as its stemcell container pool holds out; the SEUSS node absorbs every
burst because a new function costs one ~7.5 ms cold start and one ~2 MB
snapshot.

Run:  python examples/burst_resiliency.py [interval_seconds]
"""

import sys

from repro import Environment
from repro.faas.cluster import FaasCluster
from repro.linuxnode.config import LinuxNodeConfig
from repro.metrics.stats import percentile
from repro.workload.burst import BurstConfig, BurstWorkload


def run_backend(backend: str, interval_s: float) -> None:
    env = Environment()
    if backend == "seuss":
        cluster = FaasCluster.with_seuss_node(env)
    else:
        # The paper enables a 256-container stemcell pool for bursts.
        cluster = FaasCluster.with_linux_node(
            env, config=LinuxNodeConfig(stemcell_pool_size=256)
        )
    config = BurstConfig(
        burst_interval_ms=interval_s * 1000.0,
        burst_count=6,
        burst_size=128,
    )
    result = BurstWorkload(config).run(cluster)

    print(f"--- {backend} (burst every {interval_s:.0f}s) ---")
    for index, burst in enumerate(result.bursts, start=1):
        errors = sum(1 for r in burst if not r.success)
        ok = [r.latency_ms for r in burst if r.success]
        high = max(ok) / 1000.0 if ok else float("nan")
        marker = f"  <-- {errors} errors" if errors else ""
        print(
            f"  burst {index}: slowest {high:6.2f} s, "
            f"{len(ok):3d}/{len(burst)} ok{marker}"
        )
    background = result.background_latencies()
    print(
        f"  background: {len(result.background)} requests, "
        f"{result.background_errors} errors, "
        f"p50 {percentile(background, 50):.0f} ms, "
        f"p99 {percentile(background, 99):.0f} ms"
    )
    print()


def main() -> None:
    interval_s = float(sys.argv[1]) if len(sys.argv) > 1 else 16.0
    for backend in ("linux", "seuss"):
        run_backend(backend, interval_s)
    print(
        "The Linux node's container cache exhausts under repeated bursts\n"
        "(evictions + slow creations + bridge timeouts), while each burst\n"
        "costs SEUSS one extra snapshot: 'we would presumably require tens\n"
        "of thousands of bursts before there would be any cache contention'."
    )


if __name__ == "__main__":
    main()
