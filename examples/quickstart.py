#!/usr/bin/env python3
"""Quickstart: deploy serverless functions from unikernel snapshots.

Builds a SEUSS compute node, walks one function through all three
invocation paths (cold / warm / hot), and shows where the time goes —
the latency decomposition behind the paper's Table 1.

Run:  python examples/quickstart.py
"""

from repro import Environment, SeussNode, nop_function


def main() -> None:
    env = Environment()
    node = SeussNode(env)

    # Node initialization happens once: boot the Rumprun+Node.js
    # unikernel, apply anticipatory optimizations, capture the base
    # runtime snapshot.  Every function deployment afterwards skips all
    # of this work.
    node.initialize_sync()
    record = node.runtime_record("nodejs")
    print(f"node initialized in {env.now:.0f} ms (paid once)")
    print(
        f"  runtime snapshot: {record.snapshot.size_mb:.1f} MB "
        f"({record.ao_report.mb_added:.1f} MB added by AO)"
    )
    print()

    fn = nop_function(name="hello", owner="quickstart")

    # COLD: no cached state for this function.  Deploy from the runtime
    # snapshot, import + compile the code, capture a function snapshot.
    cold = node.invoke_sync(fn)
    print(f"cold start: {cold.latency_ms:.2f} ms ({cold.path.value})")
    for stage, duration in cold.breakdown.items():
        print(f"    {stage:<22} {duration:.2f} ms")

    # HOT: the idle UC from the cold start is reused; only the
    # arguments are imported and the function runs.
    hot = node.invoke_sync(fn)
    print(f"hot start:  {hot.latency_ms:.2f} ms ({hot.path.value})")

    # WARM: drop the idle UC (as the OOM daemon would under pressure);
    # the function snapshot still short-circuits import/compile.
    node.uc_cache.drop_function(fn.key)
    warm = node.invoke_sync(fn)
    print(f"warm start: {warm.latency_ms:.2f} ms ({warm.path.value})")
    print()

    snapshot = node.snapshot_cache.get(fn.key)
    print(
        f"function snapshot: {snapshot.size_mb:.2f} MB diff on a "
        f"{snapshot.parent.size_mb:.1f} MB shared base "
        f"(stack depth {snapshot.depth})"
    )
    stats = node.memory_stats()
    print(
        f"node memory: {stats.allocated_mb:.0f} MB allocated of "
        f"{stats.total_pages // 256} MB"
    )


if __name__ == "__main__":
    main()
