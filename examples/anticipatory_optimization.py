#!/usr/bin/env python3
"""Anticipatory optimization: pre-execute likely paths before snapshotting.

Reproduces the paper's Table 2 sweep and the §3 "snapshot stacks"
arithmetic (the Foo()/Bar() example), showing the dual effect of AO:
latency collapses *and* function snapshots shrink, because first-use
state migrates into the shared base snapshot.

Run:  python examples/anticipatory_optimization.py
"""

from repro import AOLevel, Environment, SeussConfig, SeussNode, nop_function


def measure(level: AOLevel):
    env = Environment()
    node = SeussNode(env, SeussConfig(ao_level=level))
    node.initialize_sync()
    fn = nop_function(owner=f"ao-{level.value}")
    cold = node.invoke_sync(fn)
    node.uc_cache.drop_function(fn.key)
    warm = node.invoke_sync(fn)
    snapshot = node.snapshot_cache.get(fn.key)
    base = node.runtime_record("nodejs").snapshot
    return cold.latency_ms, warm.latency_ms, base.size_mb, snapshot.size_mb


def main() -> None:
    print("Table 2 sweep — AO level vs latency and snapshot sizes:")
    print(
        f"{'AO level':<24}{'cold ms':>9}{'warm ms':>9}"
        f"{'base MB':>10}{'fn MB':>8}"
    )
    for level in AOLevel:
        cold_ms, warm_ms, base_mb, fn_mb = measure(level)
        print(
            f"{level.value:<24}{cold_ms:>9.1f}{warm_ms:>9.1f}"
            f"{base_mb:>10.1f}{fn_mb:>8.2f}"
        )
    print()
    print(
        "AO bloats the base snapshot by ~4.9 MB but halves every function\n"
        "snapshot and removes the first-use latency from every cold start.\n"
    )

    # -- §3's snapshot-stack arithmetic, measured, not asserted ----------
    env = Environment()
    node = SeussNode(env)
    node.initialize_sync()
    foo = nop_function(name="Foo", owner="stacks")
    bar = nop_function(name="Bar", owner="stacks")
    node.invoke_sync(foo)
    node.invoke_sync(bar)
    base = node.runtime_record("nodejs").snapshot
    foo_snap = node.snapshot_cache.get(foo.key)
    bar_snap = node.snapshot_cache.get(bar.key)
    flat = 2 * (base.size_mb + foo_snap.size_mb)
    stacked = base.size_mb + foo_snap.size_mb + bar_snap.size_mb
    print("Snapshot stacks (§3): caching Foo() and Bar() fully initialized")
    print(f"  two flat snapshots would cost: {flat:8.1f} MB")
    print(f"  one base + two diffs costs:    {stacked:8.1f} MB")
    print(
        f"  the {base.size_mb:.1f} MB interpreter image is stored once and\n"
        f"  shared by both function snapshots (diffs of "
        f"{foo_snap.size_mb:.1f} MB each)."
    )


if __name__ == "__main__":
    main()
