#!/usr/bin/env python3
"""Skewed production-like traffic: Zipf popularity, Poisson arrivals.

The paper's throughput trials use uniform-random invocations; real FaaS
traffic is heavily skewed — a few hot functions dominate and a long
tail is invoked rarely.  This example replays the same open-loop
synthetic trace (Poisson arrivals over Zipf-ranked functions) against
both backends and reports per-rank behaviour.

The punchline matches the paper's analysis: skew is the *friendly* case
for Linux (the head stays hot in its container cache), yet the tail
still forces container creations that SEUSS serves as ~7.5 ms snapshot
cold starts — so Linux's tail latency is orders of magnitude worse even
on a workload built to favour it.

Run:  python examples/zipf_workload.py
"""

from repro import Environment
from repro.faas.cluster import FaasCluster
from repro.metrics.stats import percentile
from repro.workload.functions import unique_nop_set
from repro.workload.traces import (
    PoissonArrivals,
    ZipfPopularity,
    replay_trace,
    synthesize_trace,
)

FUNCTIONS = 400
REQUESTS = 3000
RATE_PER_S = 40.0
HEAD = 10


def run_backend(backend: str):
    env = Environment()
    if backend == "seuss":
        cluster = FaasCluster.with_seuss_node(env)
    else:
        cluster = FaasCluster.with_linux_node(env)
    functions = unique_nop_set(FUNCTIONS, owner_prefix=f"zipf-{backend}")
    popularity = ZipfPopularity(FUNCTIONS, exponent=1.1, seed=11)
    trace = synthesize_trace(
        functions,
        PoissonArrivals(RATE_PER_S, seed=11),
        popularity,
        count=REQUESTS,
    )
    head_keys = {functions[i].key for i in range(HEAD)}
    results = replay_trace(cluster, trace)
    ok = [r for r in results if r.success]
    head = [r.latency_ms for r in ok if r.function_key in head_keys]
    tail = [r.latency_ms for r in ok if r.function_key not in head_keys]
    return {
        "errors": len(results) - len(ok),
        "head_p50": percentile(head, 50),
        "head_p99": percentile(head, 99),
        "tail_p50": percentile(tail, 50),
        "tail_p99": percentile(tail, 99),
        "head_share": popularity.head_share(HEAD),
    }


def main() -> None:
    print(
        f"{REQUESTS} Poisson requests at {RATE_PER_S:.0f}/s over "
        f"{FUNCTIONS} Zipf-ranked functions:"
    )
    rows = {backend: run_backend(backend) for backend in ("linux", "seuss")}
    share = rows["linux"]["head_share"]
    print(
        f"(the {HEAD} hottest functions carry {share * 100:.0f}% of traffic)\n"
    )
    print(
        f"{'backend':<8}{'errors':>8}{'head p50':>10}{'head p99':>10}"
        f"{'tail p50':>10}{'tail p99':>10}"
    )
    for backend, stats in rows.items():
        print(
            f"{backend:<8}{stats['errors']:>8}"
            f"{stats['head_p50']:>10.0f}{stats['head_p99']:>10.0f}"
            f"{stats['tail_p50']:>10.0f}{stats['tail_p99']:>10.0f}"
        )
    print(
        "\nLatencies in ms.  The popular head runs hot on both platforms;\n"
        "the long tail pays container creation on Linux but only a ~7.5 ms\n"
        "snapshot deployment on SEUSS."
    )


if __name__ == "__main__":
    main()
